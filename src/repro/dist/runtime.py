"""The threaded SPMD runtime: one Python thread per simulated rank.

:func:`run_spmd` spawns ``world_size`` threads, hands each a
:class:`Communicator`, and joins them.  Collectives rendezvous per process
group: the *n*-th collective a rank issues on a group meets the *n*-th
collective of every other member, the last arriver reduces the contributions
**in group-rank order** (so results are bitwise identical on every rank and
across repeated runs — the invariant D-CHAG's replicated final layer relies
on, §3.3), and everyone leaves with a private copy.

Failure semantics: an exception on any rank aborts the whole world.  Blocked
peers poll an abort flag while waiting, so a barrier whose partner died
raises instead of deadlocking, and :func:`run_spmd` re-raises the original
failure as :class:`SpmdError` ("rank N failed: ...").  A rank that issues a
*different* collective than its peers on the same group slot fails fast with
a mismatch error rather than timing out.

Worlds are fully isolated: every :func:`run_spmd` call builds a fresh
:class:`World` with its own groups, mailboxes and
:class:`~repro.dist.stats.TrafficLog`, so concurrent worlds driven from
different threads never interfere.

Virtual clock: ``run_spmd(..., clock=VirtualClock(machine))`` attaches a
deterministic simulated clock (:class:`repro.perf.clock.VirtualClock`, duck
typed — this module never imports it).  Every collective then advances the
member ranks to ``max(arrival times) + α–β collective cost``, every traffic
record carries virtual ``vstart``/``vend`` stamps, and ranks can charge
compute intervals with :meth:`Communicator.charge_compute` — the substrate
from which :mod:`repro.perf.overlap` derives communication/compute overlap
fractions instead of assuming them.  Timelines depend only on program order
(never on thread scheduling), so repeated runs are bitwise identical.
"""

from __future__ import annotations

import contextlib
import threading
import time
from collections import deque
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from .stats import TrafficLog, TrafficRecord, ring_wire_bytes

__all__ = [
    "SpmdError",
    "ProcessGroup",
    "World",
    "Communicator",
    "run_spmd",
    "run_spmd_world",
    "split_sizes",
]

# How often blocked ranks re-check the abort flag.  Completions open each
# waiter's gate directly, so this only bounds abort latency, not collective
# latency.
_POLL_S = 0.05

_DEFAULT_TIMEOUT_S = 120.0

_REDUCE_OPS = ("sum", "mean", "max", "min")


class SpmdError(RuntimeError):
    """A simulated SPMD world failed (rank exception, misuse, or timeout).

    When raised by :func:`run_spmd_world` the error carries post-mortem
    context for elastic supervisors: ``rank`` is the world rank that failed
    (``-1`` for driver-side timeouts), and ``world`` is the dead
    :class:`World`, whose ``rank_status`` and ``traffic`` survive the abort.
    """

    rank: int = -1
    world: "World | None" = None


class _Aborted(BaseException):
    """Internal: unwinds a rank thread after the world aborted.

    Derives from BaseException so user-level ``except Exception`` blocks
    inside rank functions cannot swallow the shutdown.
    """


class ProcessGroup:
    """An ordered subset of world ranks that communicates collectively.

    The *i*-th entry of ``ranks`` is group-rank *i*; reductions accumulate in
    this order, which is what makes them deterministic.
    """

    __slots__ = ("world", "ranks", "size", "_index", "_state")

    def __init__(self, world: "World", ranks: tuple[int, ...]) -> None:
        self.world = world
        self.ranks = ranks
        self.size = len(ranks)
        self._index = {r: i for i, r in enumerate(ranks)}
        self._state = world._group_state(ranks)

    def rank_index(self, world_rank: int) -> int:
        """This world rank's position within the group."""
        try:
            return self._index[world_rank]
        except KeyError:
            raise SpmdError(f"rank {world_rank} is not a member of group {list(self.ranks)}") from None

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self._index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessGroup(ranks={list(self.ranks)})"


#: Rendezvous slots per group, reused generationally.  Ranks on one group
#: can only ever span two consecutive collective slots (a rank issues slot
#: k+1 only after consuming slot k, and slot k completes only once every
#: member consumed slot k−1), so a ring of 4 can never collide.
_SLOT_RING = 4


class _Slot:
    """One collective rendezvous: the n-th collective issued on a group.

    Slots live in a fixed per-group ring and are re-initialized in place
    when their generation comes around again (``gen`` is the sequence
    number currently occupying the slot).  Completion is a **batched
    wake**: the last arriver runs the reduction, distributes every
    member's private return value into ``values`` while all peers are
    still blocked, then publishes by releasing each waiter's pre-locked
    **gate** — one plain C-level mutex handoff per waiter, with none of
    ``Event``/``Condition``'s per-wait waiter-lock allocation and list
    bookkeeping.  Waiters pick their value up lock-free (one GIL-atomic
    list read) — no consumed-count bookkeeping, no second
    synchronization point on the way out.
    """

    __slots__ = (
        "gen",
        "signature",
        "data",
        "consumers",
        "arrived",
        "done",
        "gates",
        "values",
        "value_errors",
        "result",
        "self_consume",
        "picked",
        "error",
        "out_count",
        "scratch",
        "arrivals",
        "payload_max",
        "start",
        "finish",
    )

    def __init__(self, size: int) -> None:
        self.gen = -1
        # One pre-locked gate per member.  Waiters block on their own
        # gate's timed acquire; the publisher releases each peer's gate
        # after ``done`` is set.  A raw lock handoff is the cheapest wake
        # CPython offers — no per-wait waiter-lock allocation, no
        # Condition list bookkeeping — and the rendezvous-bound collective
        # floor is exactly this wake path times the group size.
        self.gates = [threading.Lock() for _ in range(size)]
        for gate in self.gates:
            gate.acquire()
        self.data: list[Any] = [None] * size
        self.consumers: list[Any] = [None] * size
        self.values: list[Any] = [None] * size
        self.value_errors: list[BaseException | None] = [None] * size
        self.arrivals: list[float] = [0.0] * size
        self.signature: tuple = ()
        self.arrived = 0
        self.done = False
        self.result: Any = None
        self.self_consume = False
        self.picked: list[None] = []
        self.error: BaseException | None = None
        self.out_count = 0
        # Reusable reduction buffers keyed by (shape, dtype); kept across
        # recycles so steady-state schedules reduce into warm, preallocated
        # memory instead of faulting a fresh buffer per collective.  Only
        # used when every member passed ``out=`` (the result then never
        # escapes the slot).
        self.scratch: dict[tuple, np.ndarray] = {}
        self.payload_max = 0
        self.start = -1.0
        self.finish = -1.0

    def recycle(self, gen: int, signature: tuple, size: int) -> None:
        """Re-initialize for sequence number *gen* (under the group lock)."""
        self.gen = gen
        self.signature = signature
        # Re-lock any gate whose release went unconsumed (its waiter left
        # via the poll timeout after observing ``done``).  No thread can
        # be blocked on this slot's gates here: every member consumed this
        # slot's previous generation long ago (see the ring invariant).
        for gate in self.gates:
            gate.acquire(False)
        self.data = [None] * size
        self.consumers = [None] * size
        self.values = [None] * size
        self.value_errors = [None] * size
        self.arrived = 0
        self.done = False
        self.result = None
        self.self_consume = False
        self.picked = []
        self.error = None
        self.out_count = 0
        self.payload_max = 0
        self.start = -1.0
        self.finish = -1.0


class _GroupState:
    """Shared rendezvous state for one ranks-tuple (lazily created).

    ``lock`` guards only the brief arrival/consumption bookkeeping; waiting
    happens on each member's own slot gate, and reductions run on the last
    arriver's thread with no lock held at all.
    """

    __slots__ = ("lock", "ring", "next_seq")

    def __init__(self, size: int) -> None:
        self.lock = threading.Lock()
        self.ring = [_Slot(size) for _ in range(_SLOT_RING)]
        # Per-group-rank count of collectives issued on this group so far.
        self.next_seq = [0] * size


class World:
    """Shared state of one SPMD run: groups, mailboxes, traffic, abort flag.

    ``failure_plan`` is any object exposing ``check(rank, step)`` (see
    :class:`repro.elastic.FailurePlan`); ranks consult it through
    :meth:`Communicator.tick` so tests can script deterministic crashes.
    ``rank_status`` records each rank's clean exit state — ``"running"``,
    ``"ok"``, ``"failed"`` (the rank that raised) or ``"aborted"`` (peers
    unwound by the abort) — and stays readable after the world dies.

    ``clock`` is an optional virtual clock (duck typed against
    :class:`repro.perf.clock.VirtualClock`: ``bind``/``now``/``sync``/
    ``charge``/``collective_seconds``/``p2p_seconds``); when installed,
    every collective advances the simulated per-rank timelines and stamps
    its traffic records with virtual start/end times.
    """

    def __init__(
        self,
        size: int,
        timeline: bool = False,
        failure_plan: Any | None = None,
        clock: Any | None = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"world size must be >= 1, got {size}")
        self.size = size
        self.traffic = TrafficLog(timeline=timeline)
        self.failure_plan = failure_plan
        self.clock = clock
        if clock is not None:
            clock.bind(size)
        self.rank_status: list[str] = ["running"] * size
        self._lock = threading.Lock()
        self._group_states: dict[tuple[int, ...], _GroupState] = {}
        self._abort_event = threading.Event()
        self._failure: tuple[int, BaseException] | None = None
        self._mail: dict[tuple[int, int, int], deque] = {}
        self._mail_cond = threading.Condition()
        self.default_group = ProcessGroup(self, tuple(range(size)))

    # -- group bookkeeping -------------------------------------------------
    def _group_state(self, ranks: tuple[int, ...]) -> _GroupState:
        with self._lock:
            state = self._group_states.get(ranks)
            if state is None:
                state = self._group_states[ranks] = _GroupState(len(ranks))
            return state

    def group(self, ranks: Sequence[int]) -> ProcessGroup:
        ranks = tuple(int(r) for r in ranks)
        if len(set(ranks)) != len(ranks):
            raise SpmdError(f"duplicate ranks in group {list(ranks)}")
        if not ranks:
            raise SpmdError("cannot create an empty process group")
        for r in ranks:
            if not 0 <= r < self.size:
                raise SpmdError(f"rank {r} out of range for world of size {self.size}")
        return ProcessGroup(self, ranks)

    # -- failure handling ----------------------------------------------------
    @property
    def aborted(self) -> bool:
        return self._abort_event.is_set()

    @property
    def failed_ranks(self) -> list[int]:
        """World ranks whose thread raised (not peers unwound by the abort)."""
        return [r for r, s in enumerate(self.rank_status) if s == "failed"]

    def abort(self, rank: int, exc: BaseException) -> None:
        """Record the first failure and wake every blocked rank."""
        with self._lock:
            if self._failure is None:
                self._failure = (rank, exc)
        self._abort_event.set()
        with self._mail_cond:
            self._mail_cond.notify_all()
        with self._lock:
            states = list(self._group_states.values())
        for state in states:
            # Wake every blocked waiter immediately: they observe the slot
            # still not done, re-check the abort flag, and unwind.
            for slot in state.ring:
                for gate in slot.gates:
                    if gate.locked():
                        try:
                            gate.release()
                        except RuntimeError:
                            pass  # lost the race with the publisher (or a second abort)

    def _check_abort(self) -> None:
        if self._abort_event.is_set():
            raise _Aborted()


def split_sizes(total: int, parts: int) -> tuple[int, ...]:
    """Partition *total* elements over *parts* ranks, remainder spread first.

    The shared uneven-sharding convention (``np.array_split``): the first
    ``total % parts`` ranks own one extra element, all blocks contiguous.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    base, rem = divmod(total, parts)
    return tuple(base + 1 if i < rem else base for i in range(parts))


def _copy_in(value) -> np.ndarray:
    """Snapshot a contribution so later mutation by the sender cannot leak."""
    return np.array(value, copy=True)


#: Collectives whose group-max payload reaches this size switch from
#: last-arriver distribution (one thread runs every member's consume — the
#: lowest-latency wake, but serial memcpy) to publish mode: the result is
#: detached from the live contributions once, then every member copies its
#: own value out in parallel after the wake (numpy copies drop the GIL, so
#: the per-collective memcpy floor scales down with the member count).  The
#: choice is made by the last arriver alone — one protocol per slot, never
#: a split vote.
_PUBLISH_MIN = 1 << 16


def _check_out(out: np.ndarray, shape: tuple, dtype, what: str) -> None:
    """``out=`` buffers must match exactly: silent broadcasting or casting
    would corrupt results that NCCL would have rejected."""
    if not isinstance(out, np.ndarray) or out.shape != shape or out.dtype != dtype:
        got = (
            f"{out.shape}/{out.dtype}" if isinstance(out, np.ndarray) else type(out).__name__
        )
        raise SpmdError(
            f"{what} out buffer mismatch: expected shape {shape} dtype {dtype}, got {got}"
        )


def _check_mean_dtype(op: str, arr: np.ndarray) -> None:
    """A mean of integer arrays would be cast back and silently truncate."""
    if op == "mean" and not np.issubdtype(arr.dtype, np.floating):
        raise SpmdError(
            f"mean reduction requires a floating-point array, got dtype {arr.dtype}; "
            "cast before reducing or use op='sum'"
        )


def _reduce(
    arrays: list[np.ndarray], op: str, scratch: dict | None = None
) -> np.ndarray:
    """Reduce in list order — fixed group-rank order, hence deterministic.

    Zero-copy convention: contributions are **not** snapshotted (every
    contributing rank is still blocked inside the rendezvous while this
    runs), so the reduction must never mutate its inputs.  The first
    pairwise op writes the output buffer — a warm preallocated one from
    *scratch* when every rank passed ``out=``, a fresh allocation
    otherwise — and every later op accumulates in place: the same
    left-to-right pairwise sequence as reducing into a copy, hence bitwise
    identical.
    """
    shapes = {a.shape for a in arrays}
    if len(shapes) > 1:
        raise SpmdError(f"mismatched shapes in reduction: {sorted(shapes)}")
    dtypes = {a.dtype for a in arrays}
    if len(dtypes) > 1:
        # The result is cast to group-rank-0's dtype; mixed inputs would be
        # silently truncated (e.g. float contributions into an int buffer).
        raise SpmdError(f"mismatched dtypes in reduction: {sorted(map(str, dtypes))}")
    if len(arrays) == 1:  # defensive: size-1 groups return before reducing
        return arrays[0].copy()
    out = None
    if scratch is not None:
        key = (arrays[0].shape, arrays[0].dtype.str)
        out = scratch.get(key)
        if out is None:
            out = scratch[key] = np.empty_like(arrays[0])
    if op in ("sum", "mean"):
        out = np.add(arrays[0], arrays[1], out=out)
        for a in arrays[2:]:
            out += a
        if op == "mean":
            out /= len(arrays)  # float-only; int mean is rejected at the call site
    elif op == "max":
        out = np.maximum(arrays[0], arrays[1], out=out)
        for a in arrays[2:]:
            np.maximum(out, a, out=out)
    elif op == "min":
        out = np.minimum(arrays[0], arrays[1], out=out)
        for a in arrays[2:]:
            np.minimum(out, a, out=out)
    else:  # validated at the call site; defensive here
        raise SpmdError(f"unknown reduce op {op!r}")
    return out


def _consume_reduce_private(result: np.ndarray, take_ref: bool) -> np.ndarray:
    """Reduction consume without ``out=``: the one ``take_ref`` rank keeps
    the fresh compute output by reference, everyone else copies a private
    result (the reduction never aliases a contribution)."""
    return result if take_ref else result.copy()


#: Hot-path interning.  Small collectives are rendezvous-bound: with many
#: ranks sharing one GIL, per-call allocations (signature tuples, compute
#: closures) are a measurable slice of the per-collective floor, so the
#: callables that never vary per call are built exactly once.
_REDUCE_SIGS = {op: ("all_reduce", op) for op in _REDUCE_OPS}
_REDUCE_COMPUTES: dict[str, Callable] = {
    op: (lambda o: lambda data, scratch: _reduce(data, o, scratch))(op)
    for op in _REDUCE_OPS
}

#: Memoized per-(op, payload, group) wire bytes for traffic logging — pure
#: arithmetic, but steady-state steps reissue identical collectives, so the
#: hot path pays one dict probe instead.  GIL-atomic dict ops make lock-free
#: sharing safe (a racy miss just recomputes the same value).
_WIRE_CACHE: dict[tuple[str, int, int], int] = {}
_WIRE_CACHE_MAX = 4096


class Communicator:
    """One rank's handle on the world — the RCCL substitute.

    All collectives take an optional ``group``; ``None`` means the world
    group.  ``phase`` is a free-form label ("forward", "backward", ...)
    stamped on every traffic record this rank emits.
    """

    def __init__(self, world: World, rank: int) -> None:
        self.world = world
        self.rank = rank
        self.size = world.size
        self.phase = ""
        # Per-rank traffic buffer: records append under an uncontended
        # per-rank lock and merge into the world log in batches (and at
        # rank exit).  Aggregate queries on TrafficLog read the pending
        # buffers too, so counts are exact whenever the world quiesces;
        # mid-run polling may transiently miss a batch in flight.
        self._traffic = world.traffic.writer()
        self._pool = None

    @property
    def pool(self):
        """This rank's site-keyed collective buffer pool (lazily created).

        Lifetime matches the world's; wrappers key into it via
        :func:`repro.dist.pool.site_key` to reuse ``out=`` buffers across
        steps (see :mod:`repro.dist.pool` for the allocation discipline).
        """
        if self._pool is None:
            from .pool import BufferPool

            self._pool = BufferPool()
        return self._pool

    # -- plumbing ----------------------------------------------------------
    def group(self, ranks: Sequence[int]) -> ProcessGroup:
        """Create (or re-attach to) the process group over *ranks*."""
        return self.world.group(ranks)

    def tick(self, step: int) -> None:
        """Consult the world's failure plan at a step boundary.

        Trainers call this once per training step; a scripted
        :class:`~repro.elastic.FailurePlan` raises on its (rank, step) match,
        which aborts the world exactly like a real rank loss.  A no-op when
        the world has no plan installed.
        """
        plan = self.world.failure_plan
        if plan is not None:
            plan.check(self.rank, step)

    def _resolve(self, group: ProcessGroup | None) -> ProcessGroup:
        group = group if group is not None else self.world.default_group
        if self.rank not in group:
            raise SpmdError(
                f"rank {self.rank} called a collective on foreign group {list(group.ranks)}"
            )
        return group

    def _log(
        self,
        op: str,
        payload_bytes: int,
        group_size: int,
        vstart: float = -1.0,
        vend: float = -1.0,
    ) -> None:
        payload = int(payload_bytes)
        key = (op, payload, group_size)
        wire = _WIRE_CACHE.get(key)
        if wire is None:
            if len(_WIRE_CACHE) >= _WIRE_CACHE_MAX:
                _WIRE_CACHE.clear()
            wire = _WIRE_CACHE[key] = ring_wire_bytes(op, payload, group_size)
        self._traffic.add(
            TrafficRecord(
                rank=self.rank,
                op=op,
                phase=self.phase,
                payload_bytes=payload,
                wire_bytes=wire,
                group_size=group_size,
                vstart=vstart,
                vend=vend,
            )
        )

    def _vnow(self) -> float:
        """This rank's virtual time (``-1`` without a clock)."""
        clock = self.world.clock
        return clock.now(self.rank) if clock is not None else -1.0

    def _rendezvous(
        self,
        group: ProcessGroup,
        signature: tuple,
        contribution,
        compute: Callable[[list, dict | None], Any],
        payload_bytes: int = 0,
        consume: Callable[[Any, bool], Any] | None = None,
        out_provided: bool = False,
        snapshot: Callable[[Any], Any] | None = None,
    ) -> tuple[Any, float, float]:
        """Join the group's next collective slot; return this rank's value.

        Batched-wake protocol: the last arriver runs *compute* over the
        group-rank-ordered contribution list — with **no lock held**, so a
        large reduction never serializes unrelated rendezvous — then
        releases the whole group by opening each waiter's pre-locked gate
        (a raw C-level mutex handoff per member).  Below
        ``_PUBLISH_MIN`` it **distributes** first: it runs each rank's
        *consume* closure itself, while all peers are still blocked inside
        the rendezvous, and waiters pick their value up with one GIL-atomic
        list read — no lock re-acquisition, no consumed-count bookkeeping,
        no second synchronization point, and no snapshot of anything.  At or
        above it (bandwidth-bound payloads, where one thread running every
        member's memcpy serially is the floor) it **publishes** instead:
        the result is detached from the live contributions once (via
        *snapshot*, for ops whose compute output references them) and every
        member runs its own consume in parallel after the wake.  Both modes
        produce bitwise-identical values; the choice is the last arriver's
        alone, so the group can never split across protocols.

        Zero-copy contract: contributions are *not* snapshotted in
        distribution mode — every contributing rank stays blocked until
        distribution finished, so *compute* and the *consume* closures see
        stable inputs and may copy straight out of peers' live buffers.
        Neither may mutate a contribution.  In publish mode consume runs
        *after* the wake, so it may only read the (detached) result it is
        handed — which is also why no value handed back may ever alias a
        contribution.  *compute* is called as ``compute(data, scratch)``:
        *scratch* is the slot's reusable (shape, dtype)-keyed buffer map
        when **every** member passed a preallocated ``out=`` (the result
        then never escapes the slot and reductions may write warm scratch
        memory), ``None`` otherwise.  *consume* turns the shared compute
        result into one rank's private value; it is called as
        ``consume(result, take_ref)`` once per member, where ``take_ref``
        is True for at most one call — made only in distribution mode when
        *result* is a fresh private buffer (no scratch in play) — whose
        consume may then return shared compute output by reference instead
        of copying.  A consume that raises fails only its own rank (the
        error is re-raised there verbatim); peers complete normally.
        ``consume=None`` hands every rank the compute result itself
        (barrier: ``None``).  *snapshot* detaches a live-referencing
        compute result for publish mode; ops whose results are already
        private (reductions) pass ``None``.

        Returns ``(value, vstart, vend)``: this rank's virtual issue time
        and the group-wide virtual completion (slowest arrival bid +
        collective cost priced by the world's clock), both ``-1.0`` without
        a clock.  With a clock, op name ``signature[0]`` is priced over the
        largest per-rank payload bid (the padded-collective convention); a
        *blocking* collective advances every member's clock to the shared
        completion, while one issued inside an eager clock phase (see
        :class:`repro.perf.clock.VirtualClock` ``eager_phases``) only joins
        the rank's outstanding issue queue — its exposure is settled at the
        next drain point, and the rank's compute clock keeps running.
        """
        state = group._state
        me = group.rank_index(self.rank)
        size = group.size
        clock = self.world.clock
        op = signature[0]
        if clock is not None:
            # Schedule capture: record the issue at this rank's program
            # position (before any clock state moves) so a replay can
            # re-drive the very same arrival/complete protocol.
            if getattr(clock, "capturing", False):
                clock.capture_collective(
                    self.rank, op, self.phase, payload_bytes, group.ranks
                )
            # The arrival bid feeds the group-wide start maximum.  Issue-
            # queue clocks distinguish it from the rank's compute clock
            # (channel-free time for eager dispatch; blocking ops drain the
            # queue first); legacy duck clocks fall back to `now`.
            if hasattr(clock, "collective_arrival"):
                bid = clock.collective_arrival(self.rank, op, self.phase)
            else:
                bid = clock.now(self.rank)
            vstart = clock.now(self.rank)
        else:
            bid = vstart = -1.0
        with state.lock:
            seq = state.next_seq[me]
            state.next_seq[me] = seq + 1
            slot = state.ring[seq % _SLOT_RING]
            if slot.gen != seq:
                # First arrival of this generation; the previous occupant
                # (seq − _SLOT_RING) was fully consumed long ago (ranks can
                # span at most two consecutive slots, see _SLOT_RING).
                slot.recycle(seq, signature, size)
            elif slot.signature != signature:
                raise SpmdError(
                    f"collective mismatch on group {list(group.ranks)} slot {seq}: "
                    f"rank {self.rank} issued {signature[0]!r} but peers issued "
                    f"{slot.signature[0]!r}"
                )
            slot.data[me] = contribution
            slot.consumers[me] = consume
            if out_provided:
                slot.out_count += 1
            if payload_bytes > slot.payload_max:
                slot.payload_max = int(payload_bytes)
            if clock is not None:
                slot.arrivals[me] = bid
            slot.arrived += 1
            last = slot.arrived == size
        if last:
            # Compute + distribution run with no lock held: every member is
            # blocked in this rendezvous, so slot.data (and every buffer it
            # references, including peers' out= targets captured by their
            # consume closures) is stable until the wake below.
            use_scratch = slot.out_count == size
            result: Any = None
            error: BaseException | None = None
            try:
                result = compute(slot.data, slot.scratch if use_scratch else None)
            except BaseException as exc:  # surfaces on every member rank
                error = exc
            publish = (
                error is None
                and consume is not None
                and snapshot is None
                and slot.payload_max >= _PUBLISH_MIN
            )
            if publish:
                # Publish mode (bandwidth-bound reductions): the result is
                # already detached from the live contributions, so every
                # member can run its own consume after the wake — the copy
                # out of the shared reduce buffer overlaps with whatever
                # the distributor (and faster peers) do next, instead of
                # serializing on the distributor's thread.  Ops whose
                # compute output references live contributions (*snapshot*
                # is set) always distribute: one thread copying from a
                # cache-warm source beats a GIL-arbitrated copy storm.
                slot.result = result
                slot.self_consume = True
            if error is None and not publish:
                consumers = slot.consumers
                values = slot.values
                value_errors = slot.value_errors
                for i in range(size):
                    fn = consumers[i]
                    if fn is None:
                        values[i] = result
                        continue
                    try:
                        # At most one member takes shared compute output by
                        # reference, and only when it is a fresh private
                        # buffer (never the slot's warm scratch).  Which
                        # member is arrival-timing dependent; values are
                        # bitwise identical either way.
                        values[i] = fn(result, i == me and not use_scratch)
                    except BaseException as exc:  # fails rank i only
                        value_errors[i] = exc
            start = finish = -1.0
            if clock is not None:
                start = max(slot.arrivals)
                finish = start + clock.collective_seconds(
                    op, slot.payload_max, group.ranks
                )
            # The published result (if any) is detached: drop contribution
            # and closure references before the wake so the slot never pins
            # live buffers (or callers' out= targets) while the group idles.
            slot.data = []
            slot.consumers = []
            slot.error = error
            slot.start, slot.finish = start, finish
            slot.done = True  # published before the gates open (GIL write order)
            gates = slot.gates
            for i in range(size):
                if i != me:
                    try:
                        gates[i].release()
                    except RuntimeError:
                        pass  # a concurrent world abort opened this gate first
        else:
            gate = slot.gates[me]
            while not slot.done:
                # A successful acquire means the publisher opened our gate
                # (``done`` is already visible) or a world abort did; a
                # timeout is just the abort-flag poll backstop.
                if gate.acquire(True, _POLL_S) and slot.done:
                    break
                self.world._check_abort()
        error = slot.error
        start, finish = slot.start, slot.finish
        # Group-wide priced payload (max bid), read under the same
        # published-before-done guarantee as start/finish: it stamps the
        # clock's archived interval with wire volume and link class.
        group_payload = slot.payload_max
        value = None
        if error is None:
            if slot.self_consume:
                # Publish mode: copy my value out of the detached result in
                # parallel with every peer (large numpy copies release the
                # GIL).  ``picked`` is release bookkeeping only — list
                # appends are GIL-atomic, and whichever rank observes the
                # full count drops the slot's result reference (clearing
                # twice is idempotent, so a racy double-observation is
                # harmless).
                value = consume(slot.result, False)
                slot.picked.append(None)
                if len(slot.picked) == size:
                    slot.result = None
            else:
                # Distribution mode: lock-free pickup — list reads/writes
                # are GIL-atomic and each rank touches only its own index.
                # Clearing the cell releases this rank's value reference
                # without waiting for the ring slot's generation to come
                # around again.
                verr = slot.value_errors[me]
                if verr is not None:
                    raise verr
                value = slot.values[me]
                slot.values[me] = None
        if clock is not None and finish >= 0.0:
            if hasattr(clock, "collective_complete"):
                clock.collective_complete(
                    self.rank, op, self.phase, vstart, start, finish,
                    payload_bytes=group_payload, ranks=group.ranks,
                )
            else:
                clock.sync(self.rank, finish)
        if error is not None:
            raise SpmdError(f"collective failed: {error}") from error
        return value, vstart, finish

    def _run_collective(
        self,
        group: ProcessGroup,
        signature: tuple,
        contribution,
        compute: Callable[[list, dict | None], Any],
        payload_bytes: int,
        consume: Callable[[Any, bool], Any] | None = None,
        out_provided: bool = False,
        snapshot: Callable[[Any], Any] | None = None,
    ):
        """Rendezvous + traffic accounting for one logged collective.

        A collective that fails or is unwound by a world abort is **still
        logged** (with ``vend=-1.0``, marking it incomplete) so post-mortem
        traffic accounting across a failure boundary sees every op each
        rank issued — the convention the elastic recovery-cost benchmarks
        rely on.
        """
        op = signature[0]
        try:
            result, vs, ve = self._rendezvous(
                group, signature, contribution, compute, payload_bytes,
                consume=consume, out_provided=out_provided, snapshot=snapshot,
            )
        except BaseException:
            self._log(op, payload_bytes, group.size, self._vnow(), -1.0)
            raise
        self._log(op, payload_bytes, group.size, vs, ve)
        return result

    # -- virtual clock -----------------------------------------------------
    def now(self) -> float:
        """This rank's virtual time (``-1.0`` when no clock is installed)."""
        return self._vnow()

    def charge_compute(
        self, seconds: float, phase: str = "compute", label: str = ""
    ) -> tuple[float, float] | None:
        """Advance this rank's virtual clock by a compute interval.

        The parallel wrappers (:class:`~repro.parallel.DataParallel`,
        :class:`~repro.parallel.FSDPModel`, :class:`~repro.parallel.TPContext`)
        call this so rank timelines interleave compute with communication and
        :mod:`repro.perf.overlap` can derive overlap fractions.  Returns the
        ``(start, end)`` virtual interval, or ``None`` when the world has no
        clock (a no-op, so instrumented code runs unchanged without one).
        """
        clock = self.world.clock
        if clock is None or seconds <= 0.0:
            return None
        return clock.charge(self.rank, float(seconds), phase=phase, label=label)

    def drain_comm(self) -> float:
        """Settle this rank's outstanding eager collectives (a sync point).

        With an issue-queue clock (``VirtualClock(..., eager_phases=...)``)
        this advances the rank past every in-flight collective, charging
        each its exposed seconds — the virtual analogue of
        ``stream.synchronize()``.  Returns the rank's (possibly advanced)
        virtual time; a no-op without a clock or with a fully blocking one.
        The runtime drains automatically at rank exit and before every
        blocking collective, so explicit calls only matter at mid-step sync
        points (e.g. before reading an optimizer step's wall time).
        """
        clock = self.world.clock
        if clock is None:
            return -1.0
        if getattr(clock, "capturing", False):
            clock.capture_drain(self.rank)
        if hasattr(clock, "drain"):
            return clock.drain(self.rank)
        return clock.now(self.rank)

    @contextlib.contextmanager
    def phase_scope(self, phase: str) -> Iterator[None]:
        """Stamp every traffic record issued inside with *phase*."""
        prev = self.phase
        self.phase = phase
        try:
            yield
        finally:
            self.phase = prev

    # -- collectives -------------------------------------------------------
    def barrier(self, group: ProcessGroup | None = None) -> None:
        """Block until every group member reaches the same barrier call.

        Not logged as traffic (it moves no payload), but with a clock it
        still costs its latency steps and synchronizes the group's virtual
        timelines to the slowest arrival.
        """
        group = self._resolve(group)
        if group.size == 1:
            return
        self._rendezvous(group, ("barrier",), None, lambda data, scratch: None)

    def all_reduce(
        self,
        array,
        op: str = "sum",
        group: ProcessGroup | None = None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Reduce *array* over the group; every rank gets the full result.

        ``out`` receives the result in place (shape and dtype must match
        exactly) and is returned — steady-state callers that reduce into
        preallocated buffers (gradient accumulators, replay scratch) skip
        one full-size allocation per collective, and when **every** rank
        passes ``out=`` the reduction itself reuses warm per-slot scratch.
        ``out`` may alias *array*: the reduction never writes contributions.
        """
        group = self._resolve(group)
        compute = _REDUCE_COMPUTES.get(op)
        if compute is None:
            raise SpmdError(f"unknown reduce op {op!r} (expected one of {_REDUCE_OPS})")
        arr = np.asarray(array)  # no snapshot: peers stay blocked while we reduce
        if op == "mean":
            _check_mean_dtype(op, arr)
        if out is not None:
            _check_out(out, arr.shape, arr.dtype, "all_reduce")
        if group.size == 1:
            t = self._vnow()
            self._log("all_reduce", arr.nbytes, 1, t, t)
            if out is None:
                return arr.copy()
            np.copyto(out, arr)
            return out

        if out is None:
            # The reduction output never aliases a contribution; the one
            # take_ref rank (distributor, fresh buffer only) keeps it,
            # everyone else copies out a private result.
            consume = _consume_reduce_private
        else:

            def consume(result: np.ndarray, take_ref: bool) -> np.ndarray:
                np.copyto(out, result)
                return out

        return self._run_collective(
            group,
            _REDUCE_SIGS[op],
            arr,
            compute,
            payload_bytes=arr.nbytes,
            consume=consume,
            out_provided=out is not None,
        )

    def all_gather(
        self,
        array,
        group: ProcessGroup | None = None,
        out: Sequence[np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """Gather every rank's array; returns private copies in group order.

        ``out`` — one preallocated buffer per group rank, exact shape and
        dtype match — receives the parts in place (the list is returned).
        Parts are copied straight out of the peers' live buffers during
        batched-wake distribution (every member is still blocked inside the
        collective while copies run), so no intermediate snapshot is ever
        taken.  ``out`` buffers must not overlap the *array* of any other
        rank — aliasing your own contribution is allowed.
        """
        group = self._resolve(group)
        arr = np.asarray(array)
        if out is not None:
            if len(out) != group.size:
                raise SpmdError(
                    f"all_gather out must supply exactly {group.size} buffers, "
                    f"got {len(out)}"
                )
            me = group.rank_index(self.rank)
            for i, o in enumerate(out):
                if not isinstance(o, np.ndarray) or not np.may_share_memory(o, arr):
                    continue
                # Only the rank's own slot may alias its input, and only
                # *exactly* (same memory, shape and strides — the copy is
                # then a no-op): a partial overlap would mutate the live
                # contribution while distribution is still copying peers'
                # parts from it.
                exact = o is arr or (
                    o.shape == arr.shape
                    and o.strides == arr.strides
                    and o.__array_interface__["data"] == arr.__array_interface__["data"]
                )
                if i != me or not exact:
                    raise SpmdError(
                        "all_gather out buffers must not overlap this rank's "
                        "input (peers copy it live during distribution); "
                        "only out[me] exactly aliasing the input is allowed"
                    )
        if group.size == 1:
            t = self._vnow()
            self._log("all_gather", arr.nbytes, 1, t, t)
            if out is None:
                return [arr.copy()]
            _check_out(out[0], arr.shape, arr.dtype, "all_gather")
            np.copyto(out[0], arr)
            return list(out)

        def consume(parts: list, take_ref: bool) -> list[np.ndarray]:
            if out is None:
                # Parts are peers' live buffers: always copy (a reference
                # would be mutable by its contributor after the wake).
                return [np.array(p, copy=True) for p in parts]
            # All-or-nothing: validate every buffer before writing any, so
            # a mismatch never leaves the caller's buffers half-clobbered.
            for o, p in zip(out, parts):
                _check_out(o, p.shape, p.dtype, "all_gather")
            for o, p in zip(out, parts):
                np.copyto(o, p)
            return list(out)

        return self._run_collective(
            group,
            ("all_gather",),
            arr,
            # Distribution copies straight from the live contributions;
            # publish mode detaches them via the snapshot below first.
            lambda data, scratch: data,
            payload_bytes=arr.nbytes,
            consume=consume,
            out_provided=out is not None,
            snapshot=lambda parts: [np.array(p, copy=True) for p in parts],
        )

    def all_gather_concat(
        self, array, group: ProcessGroup | None = None, axis: int = 0
    ) -> np.ndarray:
        """AllGather then concatenate along *axis* (one logged collective)."""
        return np.concatenate(self.all_gather(array, group=group), axis=axis)

    def reduce_scatter(
        self,
        array,
        op: str = "sum",
        group: ProcessGroup | None = None,
        axis: int = 0,
        sizes: Sequence[int] | None = None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Reduce over the group, return this rank's slice of *axis*.

        With *sizes* (one entry per group rank, summing to the axis length)
        the split may be uneven; without it, a non-divisible axis falls back
        to the remainder convention of :func:`split_sizes` (first ``r`` ranks
        get one extra element).  Uneven splits are executed as *padded*
        collectives — every chunk is padded to the largest, the ring moves
        the padded volume (which is what the traffic log charges), and the
        pad is stripped before the result is returned.  ``out`` receives
        this rank's slice in place (exact shape/dtype match) and is
        returned; when every rank passes ``out=`` the reduction reuses warm
        per-slot scratch instead of allocating.
        """
        group = self._resolve(group)
        if op not in _REDUCE_OPS:
            raise SpmdError(f"unknown reduce op {op!r} (expected one of {_REDUCE_OPS})")
        arr = np.asarray(array)  # no snapshot: the reduction never aliases inputs
        _check_mean_dtype(op, arr)
        n = group.size
        dim = arr.shape[axis]
        if sizes is None:
            chunk_sizes = split_sizes(dim, n)
        else:
            chunk_sizes = tuple(int(s) for s in sizes)
            if len(chunk_sizes) != n:
                raise SpmdError(
                    f"reduce_scatter sizes must have one entry per group rank "
                    f"({n}), got {len(chunk_sizes)}"
                )
            if any(s < 0 for s in chunk_sizes) or sum(chunk_sizes) != dim:
                raise SpmdError(
                    f"reduce_scatter sizes {list(chunk_sizes)} do not partition "
                    f"axis {axis} of size {dim}"
                )
        # Padded-collective accounting: with uneven chunks the ring moves
        # max(chunk) per rank per step, i.e. n·max(chunk) total elements.
        padded_dim = max(chunk_sizes) * n if chunk_sizes else 0
        payload = arr.nbytes if dim == 0 else (arr.nbytes // dim) * padded_dim
        me = group.rank_index(self.rank)
        lo = int(sum(chunk_sizes[:me]))
        idx = [slice(None)] * arr.ndim
        idx[axis] = slice(lo, lo + chunk_sizes[me])
        idx = tuple(idx)
        if out is not None:
            shape = list(arr.shape)
            shape[axis] = chunk_sizes[me]
            _check_out(out, tuple(shape), arr.dtype, "reduce_scatter")
        if n == 1:
            t = self._vnow()
            self._log("reduce_scatter", payload, 1, t, t)
            if out is None:
                return arr.copy()
            np.copyto(out, arr)
            return out

        def consume(full: np.ndarray, last: bool) -> np.ndarray:
            if out is not None:
                np.copyto(out, full[idx])
                return out
            # Every rank copies its slice: a view handoff would let one
            # (scheduling-chosen) rank pin the n-times-larger reduce buffer
            # and receive a non-contiguous array where peers get compact
            # copies.
            return full[idx].copy()

        return self._run_collective(
            group,
            ("reduce_scatter", op, axis, chunk_sizes),
            arr,
            lambda data, scratch: _reduce(data, op, scratch),
            payload_bytes=payload,
            consume=consume,
            out_provided=out is not None,
        )

    def broadcast(
        self,
        value,
        root: int,
        group: ProcessGroup | None = None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Every rank receives a copy of the *root* world-rank's payload.

        ``out`` receives the payload in place (exact shape/dtype match,
        validated against the root's payload at completion) and is
        returned — parameter broadcasts write straight into the live
        parameter buffers instead of allocating a copy to assign from.
        """
        group = self._resolve(group)
        root_index = group.rank_index(root)
        payload = np.asarray(value) if self.rank == root else None
        if group.size == 1:
            t = self._vnow()
            self._log("broadcast", payload.nbytes, 1, t, t)
            if out is None:
                return payload.copy()
            _check_out(out, payload.shape, payload.dtype, "broadcast")
            np.copyto(out, payload)
            return out

        def compute(data: list, scratch) -> np.ndarray:
            contributed = data[root_index]
            if contributed is None:
                raise SpmdError(f"broadcast root rank {root} supplied no payload")
            # The root's live buffer: distribution copies from it per rank
            # while the root is still blocked — no shared snapshot.
            return contributed

        def consume(r: np.ndarray, take_ref: bool) -> np.ndarray:
            if out is not None:
                _check_out(out, r.shape, r.dtype, "broadcast")
                np.copyto(out, r)
                return out
            # r is the root's live buffer: always detach with a copy.
            return np.array(r, copy=True)

        bid = payload.nbytes if payload is not None else 0
        try:
            result, vs, ve = self._rendezvous(
                group, ("broadcast", root), payload, compute, payload_bytes=bid,
                consume=consume, out_provided=out is not None,
                snapshot=lambda r: np.array(r, copy=True),
            )
        except BaseException:
            # Failed/aborted broadcasts still log (vend=-1), like every
            # other collective; non-root ranks only know their zero bid.
            self._log("broadcast", bid, group.size, self._vnow(), -1.0)
            raise
        self._log("broadcast", result.nbytes, group.size, vs, ve)
        return result

    def scatter(self, chunks, root: int, group: ProcessGroup | None = None) -> np.ndarray:
        """Root supplies one chunk per group rank; each rank gets its own."""
        group = self._resolve(group)
        root_index = group.rank_index(root)
        contribution = None
        payload = 0
        if self.rank == root:
            if chunks is None or len(chunks) != group.size:
                raise SpmdError(
                    f"scatter root must supply exactly {group.size} chunks, "
                    f"got {0 if chunks is None else len(chunks)}"
                )
            contribution = [np.asarray(c) for c in chunks]
            payload = sum(c.nbytes for c in contribution)
        if group.size == 1:
            t = self._vnow()
            self._log("scatter", payload, 1, t, t)
            return contribution[0].copy()

        def compute(data: list, scratch) -> list[np.ndarray]:
            sent = data[root_index]
            if sent is None:
                raise SpmdError(f"scatter root rank {root} supplied no chunks")
            # The root's live chunk list: each rank's distribution copy
            # detaches exactly the one chunk it consumes.
            return sent

        me = group.rank_index(self.rank)
        return self._run_collective(
            group, ("scatter", root), contribution, compute, payload_bytes=payload,
            consume=lambda parts, take_ref: np.array(parts[me], copy=True),
            snapshot=lambda parts: [np.array(c, copy=True) for c in parts],
        )

    def gather(self, array, root: int, group: ProcessGroup | None = None) -> list[np.ndarray] | None:
        """Inverse of scatter: the root receives every rank's array in group
        order; other ranks receive ``None``."""
        group = self._resolve(group)
        group.rank_index(root)  # validate membership
        arr = np.asarray(array)
        if group.size == 1:
            t = self._vnow()
            self._log("gather", arr.nbytes, 1, t, t)
            return [arr.copy()]
        is_root = self.rank == root
        parts = self._run_collective(
            group,
            ("gather", root),
            arr,
            # Live contributions: only the root's distribution copy reads
            # them, so non-root ranks cost nothing.
            lambda data, scratch: data,
            payload_bytes=arr.nbytes,
            consume=lambda parts, take_ref: (
                [np.array(p, copy=True) for p in parts] if is_root else None
            ),
            snapshot=lambda parts: [np.array(p, copy=True) for p in parts],
        )
        return parts if is_root else None

    def all_to_all(
        self,
        sends,
        group: ProcessGroup | None = None,
        out: Sequence[np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """Transpose: element *i* of the result is what group-rank *i* sent
        to this rank (their ``sends[my_group_index]``).

        ``out`` — one preallocated buffer per group rank, exact shape and
        dtype match — receives the incoming chunks in place.
        """
        group = self._resolve(group)
        n = group.size
        if len(sends) != n:
            raise SpmdError(f"all_to_all needs exactly {n} send buffers, got {len(sends)}")
        if out is not None and len(out) != n:
            raise SpmdError(f"all_to_all out must supply exactly {n} buffers, got {len(out)}")
        contribution = [np.asarray(s) for s in sends]
        payload = sum(c.nbytes for c in contribution)
        if n == 1:
            t = self._vnow()
            self._log("all_to_all", payload, 1, t, t)
            if out is None:
                return [contribution[0].copy()]
            _check_out(out[0], contribution[0].shape, contribution[0].dtype, "all_to_all")
            np.copyto(out[0], contribution[0])
            return list(out)
        me = group.rank_index(self.rank)

        def consume(matrix: list, take_ref: bool) -> list[np.ndarray]:
            if out is None:
                # Cells are peers' live send buffers: copy this rank's
                # column out during distribution.
                return [np.array(matrix[i][me], copy=True) for i in range(n)]
            # All-or-nothing: validate every buffer before writing any.
            for i in range(n):
                cell = matrix[i][me]
                _check_out(out[i], cell.shape, cell.dtype, "all_to_all")
            for i in range(n):
                np.copyto(out[i], matrix[i][me])
            return list(out)

        return self._run_collective(
            group,
            ("all_to_all",),
            contribution,
            # Live send matrix: cell (i, j) is copied out only by group-rank
            # j's distribution step — exactly the n² cells that are needed.
            lambda data, scratch: data,
            payload_bytes=payload,
            consume=consume,
            snapshot=lambda m: [[np.array(a, copy=True) for a in row] for row in m],
        )

    # -- point-to-point ----------------------------------------------------
    def send(self, array, dst: int, tag: int = 0) -> None:
        """Deposit a tagged message for *dst* (non-blocking).

        With a clock the sender is charged the full transfer
        (store-and-forward); the message carries its virtual delivery time so
        the matching :meth:`recv` completes no earlier.
        """
        if not 0 <= dst < self.size:
            raise SpmdError(f"send dst {dst} out of range for world of size {self.size}")
        arr = _copy_in(array)
        clock = self.world.clock
        vstart = vend = -1.0
        if clock is not None:
            if getattr(clock, "capturing", False):
                clock.capture_send(self.rank, arr.nbytes, dst, int(tag))
            vstart = clock.now(self.rank)
            vend = vstart + clock.p2p_seconds(arr.nbytes, self.rank, dst)
            clock.sync(self.rank, vend)
        self._log("send", arr.nbytes, 2, vstart, vend)
        key = (self.rank, dst, int(tag))
        with self.world._mail_cond:
            self.world._mail.setdefault(key, deque()).append((arr, vend))
            self.world._mail_cond.notify_all()

    def recv(self, src: int, tag: int = 0) -> np.ndarray:
        """Block until a message with this (src, tag) arrives."""
        if not 0 <= src < self.size:
            raise SpmdError(f"recv src {src} out of range for world of size {self.size}")
        clock = self.world.clock
        if clock is not None and getattr(clock, "capturing", False):
            clock.capture_recv(self.rank, src, int(tag))
        key = (src, self.rank, int(tag))
        with self.world._mail_cond:
            while True:
                queue = self.world._mail.get(key)
                if queue:
                    arr, sent_vend = queue.popleft()
                    break
                self.world._check_abort()
                self.world._mail_cond.wait(_POLL_S)
        clock = self.world.clock
        vstart = vend = -1.0
        if clock is not None:
            vstart = clock.now(self.rank)
            vend = max(vstart, sent_vend)
            clock.sync(self.rank, vend)
        self._log("recv", arr.nbytes, 2, vstart, vend)
        return arr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Communicator(rank={self.rank}, size={self.size})"


def run_spmd_world(
    fn: Callable[..., Any],
    world_size: int,
    *args,
    timeout: float | None = None,
    timeline: bool = False,
    failure_plan: Any | None = None,
    clock: Any | None = None,
) -> tuple[list, World]:
    """Run ``fn(comm, *args)`` on every rank of a fresh world.

    Returns ``(results, world)`` with results in rank order; the world
    exposes ``traffic``, ``rank_status`` and ``default_group`` for
    post-mortem inspection.  Raises :class:`SpmdError` if any rank fails or
    the run exceeds *timeout* seconds (default 120); the error carries the
    failed ``rank`` and the dead ``world``.  ``timeline=True`` stamps every
    traffic record with a per-world sequence number and monotonic timestamp;
    ``failure_plan`` installs a scripted-crash plan consulted by
    :meth:`Communicator.tick`; ``clock`` installs a virtual clock (e.g.
    :class:`repro.perf.clock.VirtualClock`) that prices every collective and
    produces deterministic per-rank simulated timelines.
    """
    timeout = _DEFAULT_TIMEOUT_S if timeout is None else float(timeout)
    world = World(world_size, timeline=timeline, failure_plan=failure_plan, clock=clock)
    results: list = [None] * world_size

    def runner(rank: int) -> None:
        comm = Communicator(world, rank)
        try:
            results[rank] = fn(comm, *args)
            if clock is not None and hasattr(clock, "finalize_rank"):
                # Settle any in-flight eager collectives so the clock's
                # times() report the true per-rank makespan.
                clock.finalize_rank(rank)
            world.rank_status[rank] = "ok"
        except _Aborted:
            world.rank_status[rank] = "aborted"
        except BaseException as exc:
            world.rank_status[rank] = "failed"
            world.abort(rank, exc)
        finally:
            # Merge this rank's buffered traffic into the world log so
            # post-mortem accounting never depends on the buffers.
            comm._traffic.flush()

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"spmd-rank-{r}", daemon=True)
        for r in range(world_size)
    ]
    start = time.monotonic()
    for t in threads:
        t.start()
    timed_out = False
    try:
        for t in threads:
            remaining = timeout - (time.monotonic() - start)
            t.join(max(0.0, remaining))
            if t.is_alive():
                timed_out = True
                break
    except BaseException as exc:
        # The driver thread was interrupted (Ctrl-C, a per-test alarm, ...):
        # tear the world down so rank threads stop executing fn and polling.
        world.abort(-1, exc)
        for t in threads:
            t.join(1.0)
        raise
    if timed_out:
        world.abort(-1, TimeoutError(f"SPMD world timed out after {timeout:g}s"))
        grace = 5.0
        for t in threads:
            t.join(grace)
    failure = world._failure
    if failure is not None:
        rank, exc = failure
        if rank < 0:
            err = SpmdError(
                f"SPMD world timed out after {timeout:g}s "
                "(likely a deadlocked or mismatched collective)"
            )
        else:
            err = SpmdError(f"rank {rank} failed: {type(exc).__name__}: {exc}")
        err.rank = rank
        err.world = world
        raise err from exc
    return results, world


def run_spmd(
    fn: Callable[..., Any],
    world_size: int,
    *args,
    timeout: float | None = None,
    timeline: bool = False,
    failure_plan: Any | None = None,
    clock: Any | None = None,
) -> list:
    """Like :func:`run_spmd_world` but returns only the per-rank results."""
    results, _ = run_spmd_world(
        fn,
        world_size,
        *args,
        timeout=timeout,
        timeline=timeline,
        failure_plan=failure_plan,
        clock=clock,
    )
    return results
