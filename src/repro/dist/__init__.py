"""``repro.dist`` — the simulated multi-rank runtime (RCCL/MPI substitute).

One Python thread per rank, deterministic in-process collectives, and a
traffic log in place of real wire counters.  Every communication pattern the
paper builds on maps onto one primitive here:

Paper section → primitive
-------------------------
* **§3.1 distributed tokenization** — :func:`all_gather_autograd`: each TP
  rank tokenizes ``C/tp`` channels, the full token tensor is AllGathered
  forward, and backward pays the conjugate ReduceScatter (the overhead
  Fig. 8 measures).
* **§3.3 D-CHAG forward-only gather** — :func:`all_gather_forward_only`:
  one channel per rank gathered forward, backward is a local slice — zero
  backward collectives, the paper's headline property.  Its validity rests
  on the replicated-layer invariant: deterministic, rank-ordered reductions
  (``Communicator.all_reduce``) keep replicated modules bitwise identical.
* **§3.4 / §4.3 tensor parallelism (Megatron f/g)** — :func:`copy_to_group`
  (identity fwd / AllReduce bwd) and :func:`reduce_from_group` (AllReduce
  fwd / identity bwd) wrap each TP region.
* **§3.4 FSDP** — :func:`all_gather_autograd` with ``reduce_op="mean"``
  materializes flat parameter shards forward and ReduceScatters gradients
  onto them backward.
* **§3.4 data parallelism (outermost axis)** — :func:`average_gradients`
  (bucketed AllReduce-mean) and :func:`broadcast_parameters` (replica init).
* **§3.5 sequence parallelism** — ``Communicator.all_to_all`` switches the
  sharded axis between tokens and heads (Ulysses pattern).
* **§3.5 pipeline parallelism** — tagged ``Communicator.send`` / ``recv``
  move activations and gradients between stages.
* **§4.1 α–β cost model** — :func:`repro.dist.stats.ring_wire_bytes` prices
  each collective's ring wire volume; the per-world
  :class:`~repro.dist.stats.TrafficLog` records what actually moved.

Entry points: :func:`run_spmd` / :func:`run_spmd_world` spawn a fresh,
isolated world per call; failures on any rank abort the world and surface
as :class:`SpmdError` instead of deadlocking.
"""

from .autograd import (
    all_gather_autograd,
    all_gather_forward_only,
    average_gradients,
    broadcast_parameters,
    clip_grad_norm_sharded,
    copy_to_group,
    reduce_from_group,
)
from .pool import BufferPool, site_key
from .runtime import (
    Communicator,
    ProcessGroup,
    SpmdError,
    World,
    run_spmd,
    run_spmd_world,
    split_sizes,
)
from .stats import TrafficLog, TrafficRecord, TrafficTotals, ring_wire_bytes

__all__ = [
    "BufferPool",
    "site_key",
    "Communicator",
    "ProcessGroup",
    "SpmdError",
    "World",
    "run_spmd",
    "run_spmd_world",
    "split_sizes",
    "TrafficLog",
    "TrafficRecord",
    "TrafficTotals",
    "ring_wire_bytes",
    "all_gather_autograd",
    "all_gather_forward_only",
    "average_gradients",
    "broadcast_parameters",
    "clip_grad_norm_sharded",
    "copy_to_group",
    "reduce_from_group",
]
