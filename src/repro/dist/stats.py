"""Wire-traffic accounting for the simulated runtime.

Two layers:

* :func:`ring_wire_bytes` — the analytic per-rank wire volume of a ring
  collective, the same α–β convention :mod:`repro.perf.comm_model` prices
  (§4.1's RCCL ring algorithms).
* :class:`TrafficLog` — the per-world collective counter.  Every collective a
  rank issues appends one :class:`TrafficRecord`; the figure ablations and
  the D-CHAG communication tests read counts, payload bytes and wire bytes
  back out with the filter methods.

Payload conventions (matching NCCL/RCCL accounting and the analytic model):

============== =====================================================
op             ``payload_bytes`` argument
============== =====================================================
all_reduce     the full vector (identical on every rank)
all_gather     this rank's contribution (the shard)
reduce_scatter the full input vector (before scattering)
broadcast      the root's payload
all_to_all     one rank's total send volume
============== =====================================================

Per-rank ring wire volume:

* ``all_reduce``      → ``2·(n−1)/n · payload``  (reduce-scatter + all-gather phases)
* ``all_gather``      → ``(n−1) · shard``        (= ``(n−1)/n`` of the gathered total)
* ``reduce_scatter``  → ``(n−1)/n · payload``
* ``broadcast``       → ``(n−1)/n · payload``    (pipelined ring)
* ``all_to_all``      → ``(n−1)/n · payload``    (the diagonal stays local)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace

__all__ = ["ring_wire_bytes", "TrafficRecord", "TrafficTotals", "TrafficLog"]

_COLLECTIVE_OPS = frozenset(
    {"all_reduce", "all_gather", "reduce_scatter", "broadcast", "all_to_all", "scatter", "gather"}
)


def ring_wire_bytes(op: str, payload_bytes: int, group_size: int) -> int:
    """Per-rank bytes on the wire for one ring collective (see module doc)."""
    n = int(group_size)
    if n < 1:
        raise ValueError(f"group size must be >= 1, got {group_size}")
    p = int(payload_bytes)
    if p < 0:
        raise ValueError(f"payload_bytes must be >= 0, got {payload_bytes}")
    if n == 1:
        return 0
    if op == "all_reduce":
        return (2 * (n - 1) * p) // n
    if op == "all_gather":
        return (n - 1) * p
    if op in _COLLECTIVE_OPS:
        return ((n - 1) * p) // n
    if op == "send":
        return p
    if op == "recv":
        return 0  # the bytes are accounted on the sender's side
    raise ValueError(f"unknown collective op {op!r}")


@dataclass(frozen=True)
class TrafficRecord:
    """One collective (or point-to-point message) issued by one rank.

    ``seq`` and ``timestamp`` are only populated when the owning
    :class:`TrafficLog` runs in timeline mode (``timeline=True``): ``seq`` is
    a per-world monotonically increasing arrival index and ``timestamp`` a
    ``time.monotonic()`` stamp.  Both stay ``-1`` when the flag is off (the
    default).

    ``vstart``/``vend`` are **virtual-clock** stamps, populated when the
    world runs with ``run_spmd(..., clock=VirtualClock(machine))``: ``vstart``
    is this rank's simulated time when it entered the collective and ``vend``
    the group-wide simulated completion (slowest arrival + α–β collective
    cost), so ``vend − vstart`` includes time spent waiting for stragglers.
    Both stay ``-1.0`` without a clock.
    """

    rank: int
    op: str
    phase: str
    payload_bytes: int
    wire_bytes: int
    group_size: int
    seq: int = -1
    timestamp: float = -1.0
    vstart: float = -1.0
    vend: float = -1.0


@dataclass(frozen=True)
class TrafficTotals:
    """Single-pass aggregate of one (op, phase, rank) bucket of records."""

    count: int = 0
    payload_bytes: int = 0
    wire_bytes: int = 0


class TrafficLog:
    """Thread-safe log of every collective a world's ranks issue.

    One record per participating rank per collective, so ``count(op=...)`` on
    a 4-rank world that performs one AllReduce returns 4 — the convention the
    ablation benchmarks divide back out.  A fresh log is created for every
    :func:`~repro.dist.run_spmd` invocation; counters never leak across runs.

    Aggregates (``count`` / ``payload_bytes`` / ``wire_bytes`` /
    ``ops_histogram`` / ``totals``) are maintained as **running per-bucket
    totals** keyed by ``(op, phase, rank)`` and updated on :meth:`add`, so a
    query scans the handful of distinct buckets rather than snapshotting and
    filtering the full record list — the benchmark loops over 32–64-rank
    worlds used to be quadratic in the record count.  :meth:`records` still
    returns the full per-record list for timeline consumers.
    """

    def __init__(self, timeline: bool = False) -> None:
        self._lock = threading.Lock()
        self._records: list[TrafficRecord] = []
        # (op, phase, rank) -> [count, payload_bytes, wire_bytes]
        self._buckets: dict[tuple[str, str, int], list[int]] = {}
        self.timeline = bool(timeline)

    def add(self, record: TrafficRecord) -> None:
        with self._lock:
            if self.timeline:
                record = replace(
                    record, seq=len(self._records), timestamp=time.monotonic()
                )
            self._records.append(record)
            bucket = self._buckets.get((record.op, record.phase, record.rank))
            if bucket is None:
                bucket = self._buckets[(record.op, record.phase, record.rank)] = [0, 0, 0]
            bucket[0] += 1
            bucket[1] += record.payload_bytes
            bucket[2] += record.wire_bytes

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
            self._buckets.clear()

    # -- filtered views ---------------------------------------------------
    def records(
        self, op: str | None = None, phase: str | None = None, rank: int | None = None
    ) -> list[TrafficRecord]:
        """Matching records in arrival order.

        Unlike the aggregate queries this walks the full record list
        (O(records)); use it for per-record data — timeline stamps,
        virtual intervals — not for counting.
        """
        with self._lock:
            records = list(self._records)
        if op is None and phase is None and rank is None:
            return records
        return [
            r
            for r in records
            if (op is None or r.op == op)
            and (phase is None or r.phase == phase)
            and (rank is None or r.rank == rank)
        ]

    def totals(
        self, op: str | None = None, phase: str | None = None, rank: int | None = None
    ) -> TrafficTotals:
        """Aggregate over every bucket matching the given filters, in one
        pass over the (small) bucket table."""
        count = payload = wire = 0
        with self._lock:
            for (b_op, b_phase, b_rank), (c, p, w) in self._buckets.items():
                if (
                    (op is None or b_op == op)
                    and (phase is None or b_phase == phase)
                    and (rank is None or b_rank == rank)
                ):
                    count += c
                    payload += p
                    wire += w
        return TrafficTotals(count=count, payload_bytes=payload, wire_bytes=wire)

    def count(self, op: str | None = None, phase: str | None = None, rank: int | None = None) -> int:
        return self.totals(op, phase, rank).count

    def payload_bytes(
        self, op: str | None = None, phase: str | None = None, rank: int | None = None
    ) -> int:
        return self.totals(op, phase, rank).payload_bytes

    def wire_bytes(
        self, op: str | None = None, phase: str | None = None, rank: int | None = None
    ) -> int:
        return self.totals(op, phase, rank).wire_bytes

    def ops_histogram(self, rank: int | None = None) -> dict[str, int]:
        hist: dict[str, int] = {}
        with self._lock:
            for (b_op, _b_phase, b_rank), (c, _p, _w) in self._buckets.items():
                if rank is None or b_rank == rank:
                    hist[b_op] = hist.get(b_op, 0) + c
        return hist

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrafficLog({self.ops_histogram()})"
