"""Wire-traffic accounting for the simulated runtime.

Two layers:

* :func:`ring_wire_bytes` — the analytic per-rank wire volume of a ring
  collective, the same α–β convention :mod:`repro.perf.comm_model` prices
  (§4.1's RCCL ring algorithms).
* :class:`TrafficLog` — the per-world collective counter.  Every collective a
  rank issues appends one :class:`TrafficRecord`; the figure ablations and
  the D-CHAG communication tests read counts, payload bytes and wire bytes
  back out with the filter methods.

Payload conventions (matching NCCL/RCCL accounting and the analytic model):

============== =====================================================
op             ``payload_bytes`` argument
============== =====================================================
all_reduce     the full vector (identical on every rank)
all_gather     this rank's contribution (the shard)
reduce_scatter the full input vector (before scattering)
broadcast      the root's payload
all_to_all     one rank's total send volume
============== =====================================================

Per-rank ring wire volume:

* ``all_reduce``      → ``2·(n−1)/n · payload``  (reduce-scatter + all-gather phases)
* ``all_gather``      → ``(n−1) · shard``        (= ``(n−1)/n`` of the gathered total)
* ``reduce_scatter``  → ``(n−1)/n · payload``
* ``broadcast``       → ``(n−1)/n · payload``    (pipelined ring)
* ``all_to_all``      → ``(n−1)/n · payload``    (the diagonal stays local)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace

__all__ = ["ring_wire_bytes", "TrafficRecord", "TrafficTotals", "TrafficLog", "TrafficWriter"]

_COLLECTIVE_OPS = frozenset(
    {"all_reduce", "all_gather", "reduce_scatter", "broadcast", "all_to_all", "scatter", "gather"}
)


def ring_wire_bytes(op: str, payload_bytes: int, group_size: int) -> int:
    """Per-rank bytes on the wire for one ring collective (see module doc)."""
    n = int(group_size)
    if n < 1:
        raise ValueError(f"group size must be >= 1, got {group_size}")
    p = int(payload_bytes)
    if p < 0:
        raise ValueError(f"payload_bytes must be >= 0, got {payload_bytes}")
    if n == 1:
        return 0
    if op == "all_reduce":
        return (2 * (n - 1) * p) // n
    if op == "all_gather":
        return (n - 1) * p
    if op in _COLLECTIVE_OPS:
        return ((n - 1) * p) // n
    if op == "send":
        return p
    if op == "recv":
        return 0  # the bytes are accounted on the sender's side
    raise ValueError(f"unknown collective op {op!r}")


@dataclass(frozen=True)
class TrafficRecord:
    """One collective (or point-to-point message) issued by one rank.

    ``seq`` and ``timestamp`` are only populated when the owning
    :class:`TrafficLog` runs in timeline mode (``timeline=True``): ``seq`` is
    a per-world monotonically increasing arrival index and ``timestamp`` a
    ``time.monotonic()`` stamp.  Both stay ``-1`` when the flag is off (the
    default).

    ``vstart``/``vend`` are **virtual-clock** stamps, populated when the
    world runs with ``run_spmd(..., clock=VirtualClock(machine))``: ``vstart``
    is this rank's simulated time when it entered the collective and ``vend``
    the group-wide simulated completion (slowest arrival + α–β collective
    cost), so ``vend − vstart`` includes time spent waiting for stragglers.
    Both stay ``-1.0`` without a clock.
    """

    rank: int
    op: str
    phase: str
    payload_bytes: int
    wire_bytes: int
    group_size: int
    seq: int = -1
    timestamp: float = -1.0
    vstart: float = -1.0
    vend: float = -1.0


@dataclass(frozen=True)
class TrafficTotals:
    """Single-pass aggregate of one (op, phase, rank) bucket of records.

    ``vseconds`` sums the virtual collective wall-time ``vend − vstart``
    over the bucket's clock-stamped records (``vstart >= 0``); it stays 0
    for worlds run without a virtual clock.
    """

    count: int = 0
    payload_bytes: int = 0
    wire_bytes: int = 0
    vseconds: float = 0.0


class TrafficWriter:
    """One rank's contention-free traffic buffer (:meth:`TrafficLog.writer`).

    :meth:`add` appends to a per-rank list under a **per-writer** lock —
    uncontended on the hot path, since only the owning rank writes and the
    lock is shared with nothing but the rare explicit :meth:`flush` from
    the driver side — and merges into the owning log in batches (every
    ``_FLUSH_EVERY`` records, and at rank exit).  The per-writer lock is
    what makes concurrent flushes (owner auto-flush vs a driver-side
    ``TrafficLog.flush``) safe: the batch swap and merge are atomic, so a
    record can neither be merged twice nor lost to a torn swap.  Aggregate
    queries on the log read pending buffers directly, so buffered records
    are never invisible; flushing only moves them into the shared record
    list.  In timeline mode every record needs a global arrival sequence
    number, so the writer degrades to the locked direct path.
    """

    _FLUSH_EVERY = 256

    __slots__ = ("_log", "_lock", "pending")

    def __init__(self, log: "TrafficLog") -> None:
        self._log = log
        self._lock = threading.Lock()
        self.pending: list[TrafficRecord] = []

    def add(self, record: TrafficRecord) -> None:
        if self._log.timeline:
            self._log.add(record)
            return
        with self._lock:
            self.pending.append(record)
            if len(self.pending) < self._FLUSH_EVERY:
                return
            batch = self.pending
            self.pending = []
            # Merge while still holding the writer lock (lock order is
            # always writer → log, so this cannot deadlock): concurrent
            # flushers then can neither double-merge a batch nor land an
            # older batch after a newer one, preserving per-rank record
            # order in the shared list.
            self._log._merge(batch)

    def flush(self) -> None:
        """Merge buffered records into the shared log.

        Safe from any thread: swap **and** merge happen under the writer
        lock, so a concurrent owner-side auto-flush and a driver-side
        flush serialize — no batch merges twice and per-rank issue order
        survives in the shared record list.  A concurrent aggregate reader
        either sees a record in the buffer here or (after the merge) in
        the global buckets — transiently missing is possible,
        double-counting is not.
        """
        with self._lock:
            batch = self.pending
            if not batch:
                return
            self.pending = []
            self._log._merge(batch)


class TrafficLog:
    """Thread-safe log of every collective a world's ranks issue.

    One record per participating rank per collective, so ``count(op=...)`` on
    a 4-rank world that performs one AllReduce returns 4 — the convention the
    ablation benchmarks divide back out.  A fresh log is created for every
    :func:`~repro.dist.run_spmd` invocation; counters never leak across runs.

    Aggregates (``count`` / ``payload_bytes`` / ``wire_bytes`` /
    ``ops_histogram`` / ``totals``) are maintained as **running per-bucket
    totals** keyed by ``(op, phase, rank)``.  Bucket values are immutable
    tuples replaced wholesale under the write lock, so aggregate queries
    read a GIL-atomic snapshot of the bucket table **without taking the
    lock** — a monitoring thread polling :meth:`totals` never blocks the
    rank threads, and every bucket it sees is internally consistent.

    Hot-path writes go through per-rank :class:`TrafficWriter` buffers
    (:meth:`writer`): ranks append under an uncontended per-rank lock and
    merge in batches, instead of contending on one global lock per
    collective per rank.  Aggregate
    queries include the writers' pending records, so results are exact once
    the world quiesces (rank exit flushes) and at worst transiently missing
    in-flight records while it runs.
    """

    def __init__(self, timeline: bool = False) -> None:
        self._lock = threading.Lock()
        self._records: list[TrafficRecord] = []
        # (op, phase, rank) -> (count, payload_bytes, wire_bytes, vseconds),
        # tuples replaced atomically so readers need no lock.
        self._buckets: dict[tuple[str, str, int], tuple[int, int, int, float]] = {}
        self._writers: list[TrafficWriter] = []
        self.timeline = bool(timeline)

    def writer(self) -> TrafficWriter:
        """Register and return a buffered per-rank writer."""
        w = TrafficWriter(self)
        with self._lock:
            self._writers.append(w)
        return w

    def _add_locked(self, record: TrafficRecord) -> None:
        if self.timeline:
            record = replace(
                record, seq=len(self._records), timestamp=time.monotonic()
            )
        self._records.append(record)
        key = (record.op, record.phase, record.rank)
        c, p, w, v = self._buckets.get(key, (0, 0, 0, 0.0))
        vs = (record.vend - record.vstart) if record.vstart >= 0.0 else 0.0
        self._buckets[key] = (
            c + 1, p + record.payload_bytes, w + record.wire_bytes, v + vs
        )

    def add(self, record: TrafficRecord) -> None:
        with self._lock:
            self._add_locked(record)

    def _merge(self, records: list[TrafficRecord]) -> None:
        with self._lock:
            for record in records:
                self._add_locked(record)

    def flush(self) -> None:
        """Merge every registered writer's pending records (driver-side)."""
        for w in tuple(self._writers):
            w.flush()

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
            self._buckets.clear()
            writers = list(self._writers)
        # Writer locks are taken only after the log lock is released: the
        # add/flush path acquires them in the opposite order (writer first,
        # log second via _merge), so nesting would invert and deadlock.
        for w in writers:
            with w._lock:
                w.pending = []

    def _pending_records(self) -> list[TrafficRecord]:
        """Snapshot of every writer's unflushed records (no lock)."""
        out: list[TrafficRecord] = []
        for w in tuple(self._writers):
            out.extend(tuple(w.pending))
        return out

    # -- filtered views ---------------------------------------------------
    def records(
        self, op: str | None = None, phase: str | None = None, rank: int | None = None
    ) -> list[TrafficRecord]:
        """Matching records, flushed first then per-writer pending ones.

        Each rank's own records appear in issue order; the cross-rank
        interleaving is unspecified unless the log runs in timeline mode
        (sort by ``seq`` there).  Unlike the aggregate queries this walks
        the full record list (O(records)); use it for per-record data —
        timeline stamps, virtual intervals — not for counting.
        """
        with self._lock:
            records = list(self._records)
        records.extend(self._pending_records())
        if op is None and phase is None and rank is None:
            return records
        return [
            r
            for r in records
            if (op is None or r.op == op)
            and (phase is None or r.phase == phase)
            and (rank is None or r.rank == rank)
        ]

    def totals(
        self, op: str | None = None, phase: str | None = None, rank: int | None = None
    ) -> TrafficTotals:
        """Aggregate over every bucket matching the given filters.

        Lock-free: reads a GIL-atomic snapshot of the bucket table plus the
        writers' pending buffers, so a polling reader never blocks the rank
        threads mid-collective.  Because the bucket snapshot is taken
        before the pending buffers are walked, a batch being merged at
        that instant can be transiently missing (never double-counted):
        counts are exact once writers flush (rank exit), but a live poller
        may briefly observe up to one flush batch fewer per rank.
        """
        count = payload = wire = 0
        vseconds = 0.0
        for (b_op, b_phase, b_rank), (c, p, w, v) in self._buckets.copy().items():
            if (
                (op is None or b_op == op)
                and (phase is None or b_phase == phase)
                and (rank is None or b_rank == rank)
            ):
                count += c
                payload += p
                wire += w
                vseconds += v
        for r in self._pending_records():
            if (
                (op is None or r.op == op)
                and (phase is None or r.phase == phase)
                and (rank is None or r.rank == rank)
            ):
                count += 1
                payload += r.payload_bytes
                wire += r.wire_bytes
                if r.vstart >= 0.0:
                    vseconds += r.vend - r.vstart
        return TrafficTotals(
            count=count, payload_bytes=payload, wire_bytes=wire, vseconds=vseconds
        )

    def count(self, op: str | None = None, phase: str | None = None, rank: int | None = None) -> int:
        return self.totals(op, phase, rank).count

    def payload_bytes(
        self, op: str | None = None, phase: str | None = None, rank: int | None = None
    ) -> int:
        return self.totals(op, phase, rank).payload_bytes

    def wire_bytes(
        self, op: str | None = None, phase: str | None = None, rank: int | None = None
    ) -> int:
        return self.totals(op, phase, rank).wire_bytes

    def ops_histogram(
        self, rank: int | None = None, top: int | None = None
    ) -> dict[str, int]:
        """Per-op record counts; ``top`` keeps only the N most frequent ops
        (ties broken by op name for determinism) — the cap large-world
        drivers use so a histogram render never enumerates every op."""
        hist: dict[str, int] = {}
        for (b_op, _b_phase, b_rank), (c, _p, _w, _v) in self._buckets.copy().items():
            if rank is None or b_rank == rank:
                hist[b_op] = hist.get(b_op, 0) + c
        for r in self._pending_records():
            if rank is None or r.rank == rank:
                hist[r.op] = hist.get(r.op, 0) + 1
        if top is not None and len(hist) > top:
            kept = sorted(hist.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
            return dict(kept)
        return hist

    def records_by_rank(
        self, rank: int, op: str | None = None, phase: str | None = None
    ):
        """Stream one rank's records without copying the whole log.

        Yields flushed records first (this rank's in issue order), then the
        rank's still-pending writer records.  The shared record list is
        append-only while a world runs, so walking it by index is safe
        without snapshotting it — the O(world · records) copy
        :meth:`records` pays per call never happens here.  A concurrent
        :meth:`reset` simply ends the stream early.
        """
        i = 0
        while True:
            try:
                r = self._records[i]
            except IndexError:
                break
            i += 1
            if r.rank != rank:
                continue
            if (op is None or r.op == op) and (phase is None or r.phase == phase):
                yield r
        for w in tuple(self._writers):
            for r in tuple(w.pending):
                if r.rank != rank:
                    continue
                if (op is None or r.op == op) and (phase is None or r.phase == phase):
                    yield r

    def __len__(self) -> int:
        return len(self._records) + sum(len(w.pending) for w in tuple(self._writers))

    #: Ops rendered by ``repr`` before the histogram is elided.
    _REPR_TOP_OPS = 6

    def __repr__(self) -> str:
        hist = self.ops_histogram()
        shown = self.ops_histogram(top=self._REPR_TOP_OPS)
        extra = len(hist) - len(shown)
        body = ", ".join(f"{op!r}: {n}" for op, n in sorted(shown.items()))
        if extra > 0:
            body += f", … +{extra} more ops"
        return f"TrafficLog({{{body}}})"
