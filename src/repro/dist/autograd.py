"""Autograd-aware collectives over :class:`repro.tensor.Tensor`.

These are the communication primitives the paper's parallel strategies are
assembled from.  Each forward collective installs a backward closure on the
autograd graph; backward-pass collectives stamp their traffic records with
``phase="backward"`` so the D-CHAG tests can assert the paper's headline
"zero backward collectives" property mechanically.

=====================================  ==========================================
primitive                              forward / backward communication
=====================================  ==========================================
:func:`all_gather_autograd`            AllGather / ReduceScatter  (§3.1 dist-tok)
:func:`all_gather_forward_only`        AllGather / local slice — **no** comm (§3.3)
:func:`copy_to_group`                  identity / AllReduce   (Megatron ``f``)
:func:`reduce_from_group`              AllReduce / identity   (Megatron ``g``)
:func:`average_gradients`              — / AllReduce(mean) on grads (DP)
:func:`broadcast_parameters`           Broadcast of parameter values (DP init)
=====================================  ==========================================
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from ..tensor.optim import apply_clip_scale, grad_squared_sum
from .runtime import Communicator, ProcessGroup, SpmdError

__all__ = [
    "all_gather_autograd",
    "all_gather_forward_only",
    "copy_to_group",
    "reduce_from_group",
    "average_gradients",
    "broadcast_parameters",
    "clip_grad_norm_sharded",
]


def _backward_phase(comm: Communicator):
    """Stamp collectives issued inside with ``phase="backward"``."""
    return comm.phase_scope("backward")


def _resolve(comm: Communicator, group: ProcessGroup | None) -> ProcessGroup:
    return group if group is not None else comm.world.default_group


def all_gather_autograd(
    comm: Communicator,
    x: Tensor,
    group: ProcessGroup | None = None,
    axis: int = 0,
    reduce_op: str = "sum",
    pool_key: str | None = None,
) -> Tensor:
    """AllGather *x* along *axis*; backward pays a ReduceScatter.

    The gradient of a gathered tensor is contributed by **every** rank, so
    backward reduces (``reduce_op``: "sum", or "mean" for the FSDP/DDP
    convention) and scatters each rank its own slice — the §3.1 distributed
    tokenization cost that D-CHAG removes.

    With *pool_key* (and ``axis == 0``) the gather lands in per-part views
    of one pooled contiguous buffer, so the concatenation is free and
    steady-state calls allocate nothing; the first call at a site runs the
    allocating path to learn the peers' part shapes.  See
    :mod:`repro.dist.pool` for the reuse discipline.
    """
    group = _resolve(comm, group)
    pooled = pool_key is not None and axis == 0
    out_data = None
    if pooled:
        site = comm.pool.meta(pool_key)
        shapes = site.get("shapes") if site.get("local") == x.data.shape else None
        if shapes is not None:
            flat, views = comm.pool.take_views(pool_key, shapes, x.data.dtype)
            parts = comm.all_gather(x.data, group=group, out=views)
            out_data = flat
    if out_data is None:
        parts = comm.all_gather(x.data, group=group)
    other_dims = {p.shape[:axis] + p.shape[axis + 1 :] for p in parts}
    if len(other_dims) > 1:
        raise SpmdError(
            "all_gather_autograd requires matching non-axis dimensions on "
            f"every rank, got {sorted(other_dims)}"
        )
    # Shards may be unequal along *axis* (remainder sharding): the backward
    # ReduceScatter is told the exact per-rank sizes so each rank gets back
    # the gradient of precisely its own contribution (a padded collective).
    sizes = tuple(p.shape[axis] for p in parts)
    if out_data is None:
        out_data = np.concatenate(parts, axis=axis)
        if pooled:
            site["local"] = x.data.shape
            site["shapes"] = [p.shape for p in parts]

    def backward(grad: np.ndarray) -> None:
        out = (
            comm.pool.take(f"{pool_key}/bwd", x.data.shape, x.data.dtype)
            if pooled
            else None
        )
        with _backward_phase(comm):
            shard = comm.reduce_scatter(
                grad, op=reduce_op, group=group, axis=axis, sizes=sizes, out=out
            )
        x._accumulate(shard)

    return x._make(out_data, (x,), backward, "all_gather_autograd")


def all_gather_forward_only(
    comm: Communicator,
    x: Tensor,
    group: ProcessGroup | None = None,
    axis: int = 0,
) -> Tensor:
    """AllGather whose backward is a **local slice** — zero collectives.

    Valid only when everything downstream of the gather is replicated across
    the group (identical weights, identical math): then every rank's upstream
    gradient is identical, and this rank's slice of its own copy *is* the
    full gradient of its contribution.  This is D-CHAG's §3.3 trick.
    """
    group = _resolve(comm, group)
    parts = comm.all_gather(x.data, group=group)
    out_data = np.concatenate(parts, axis=axis)
    me = group.rank_index(comm.rank)
    lo = int(sum(p.shape[axis] for p in parts[:me]))
    width = x.data.shape[axis]

    def backward(grad: np.ndarray) -> None:
        idx = [slice(None)] * grad.ndim
        idx[axis] = slice(lo, lo + width)
        x._accumulate(np.ascontiguousarray(grad[tuple(idx)]))

    return x._make(out_data, (x,), backward, "all_gather_forward_only")


def copy_to_group(
    comm: Communicator,
    x: Tensor,
    group: ProcessGroup | None = None,
    pool_key: str | None = None,
) -> Tensor:
    """Megatron's ``f``: identity forward, AllReduce(sum) of grads backward.

    Placed at the *entry* of a tensor-parallel region: the replicated input
    feeds every rank's shard, so its gradient is the sum of all shards'
    contributions.  With *pool_key* the backward AllReduce lands in a pooled
    buffer (``_accumulate`` copies, so the pool is free to reuse it next
    step).
    """
    group = _resolve(comm, group)

    def backward(grad: np.ndarray) -> None:
        out = (
            comm.pool.take(pool_key, grad.shape, grad.dtype)
            if pool_key is not None
            else None
        )
        with _backward_phase(comm):
            x._accumulate(comm.all_reduce(grad, group=group, out=out))

    return x._make(x.data, (x,), backward, "copy_to_group")


def reduce_from_group(
    comm: Communicator,
    x: Tensor,
    group: ProcessGroup | None = None,
    pool_key: str | None = None,
) -> Tensor:
    """Megatron's ``g``: AllReduce(sum) forward, identity backward.

    Placed at the *exit* of a tensor-parallel region to complete the partial
    sums of a row-parallel matmul.  With *pool_key* the forward AllReduce
    reuses a pooled result buffer, valid until this site runs again (the
    downstream bias-add copies it into fresh activation storage).
    """
    group = _resolve(comm, group)
    out = (
        comm.pool.take(pool_key, x.data.shape, x.data.dtype)
        if pool_key is not None
        else None
    )
    out_data = comm.all_reduce(x.data, group=group, out=out)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad)

    return x._make(out_data, (x,), backward, "reduce_from_group")


def average_gradients(
    comm: Communicator,
    params: list[Tensor],
    group: ProcessGroup | None = None,
    bucket_bytes: int = 1 << 24,
    pool_key: str | None = None,
) -> None:
    """AllReduce(mean) every parameter gradient across the group (DDP sync).

    Gradients are flattened into buckets of at most *bucket_bytes* so large
    models issue a few big collectives instead of one per parameter;
    ``None`` gradients contribute zeros (a rank that never touched a
    parameter still participates in its reduction).  With *pool_key* the
    flat bucket buffers are pooled per bucket index, so a steady-state sync
    allocates nothing beyond the per-parameter grad copies.
    """
    group = _resolve(comm, group)
    params = [p for p in params if p.requires_grad]
    if not params:
        return

    buckets: list[list[Tensor]] = [[]]
    used = 0
    for p in params:
        if buckets[-1] and used + p.nbytes > bucket_bytes:
            buckets.append([])
            used = 0
        buckets[-1].append(p)
        used += p.nbytes

    for bi, bucket in enumerate(buckets):
        if pool_key is not None:
            dtype = np.result_type(*(p.data.dtype for p in bucket))
            total = sum(p.data.size for p in bucket)
            flat = comm.pool.take(f"{pool_key}/bucket{bi}", (total,), dtype)
            offset = 0
            for p in bucket:
                seg = flat[offset : offset + p.data.size]
                if p.grad is None:
                    seg[...] = 0
                else:
                    np.copyto(seg, p.grad.ravel())
                offset += p.data.size
        else:
            flat = np.concatenate(
                [
                    (p.grad if p.grad is not None else np.zeros_like(p.data)).ravel()
                    for p in bucket
                ]
            )
        # Reduce back into the flat bucket buffer (out= may alias the
        # input): no second full-size allocation per bucket.
        avg = comm.all_reduce(flat, op="mean", group=group, out=flat)
        offset = 0
        for p in bucket:
            n = p.data.size
            p.grad = avg[offset : offset + n].reshape(p.data.shape).copy()
            offset += n


def clip_grad_norm_sharded(
    comm: Communicator,
    params: list[Tensor],
    max_norm: float,
    group: ProcessGroup | None = None,
) -> float:
    """Global-norm gradient clipping over *sharded* parameters (FSDP).

    Each rank holds a disjoint shard, so the clip norm is the norm of the
    union: AllReduce the local sum of squares, then scale local grads by the
    shared factor — every rank applies the identical scale the serial
    :func:`~repro.tensor.clip_grad_norm` would.  Returns the pre-clip global
    norm.
    """
    group = _resolve(comm, group)
    local = grad_squared_sum(params)
    total = float(comm.all_reduce(np.array([local], dtype=np.float64), group=group)[0])
    norm = float(np.sqrt(total))
    apply_clip_scale(params, norm, max_norm)
    return norm


def broadcast_parameters(
    comm: Communicator,
    params: list[Tensor],
    root: int | None = None,
    group: ProcessGroup | None = None,
) -> None:
    """Overwrite every parameter in place with the *root* rank's values.

    Used at DDP construction so all replicas start identical; in-place so
    optimizers already holding references keep working.  *root* defaults to
    the group's first rank.
    """
    group = _resolve(comm, group)
    root = group.ranks[0] if root is None else root
    for p in params:
        # out= writes the payload straight into the live parameter buffer
        # (the root's broadcast is snapshotted before delivery, so aliasing
        # the contribution is safe).
        comm.broadcast(p.data, root=root, group=group, out=p.data)
