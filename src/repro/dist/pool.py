"""Site-keyed collective buffer pools — steady-state steps allocate nothing.

The runtime's collectives accept ``out=`` so callers can reuse result
buffers; :class:`BufferPool` is the piece that makes reuse systematic.  Each
call *site* (one FSDP unit gather, one TP region AllReduce, one DDP bucket)
owns a stable string key; the pool maps that key to one buffer and hands the
same array back every step, reallocating only when the requested shape or
dtype changes.  Wrappers opt in by threading ``pool_key=`` through
:mod:`repro.dist.autograd`; the allocating path stays the default and is the
reference the pooled path is property-tested bitwise against.

Allocation discipline (the contract wrappers and callers rely on):

* A pooled buffer is valid until the **same site executes again** — one
  forward/backward later its contents are overwritten in place.  Anything
  that must outlive the step (parameter gradients, checkpoint copies) is
  copied out of the pool, never aliased; :meth:`repro.tensor.Tensor._accumulate`
  already copies unowned arrays, so pooled collective results can be fed to
  autograd directly.
* Shape changes are tolerated per rank (a mismatch is a pool miss, not an
  error), but an AllGather site that cached its *peers'* part shapes
  (:meth:`BufferPool.take_views`) requires lockstep shape changes: if a peer
  shard resizes while this rank's does not, the runtime's ``out=``
  validation raises :class:`~repro.dist.runtime.SpmdError` loudly rather
  than corrupting — pooled gather sites must keep static shapes per site.
* Keys are rank-local (each rank's :class:`~repro.dist.runtime.Communicator`
  owns its own pool); no cross-rank agreement on keys is needed, only the
  usual SPMD lockstep on the collectives themselves.
"""

from __future__ import annotations

import itertools

import numpy as np

__all__ = ["BufferPool", "site_key"]

_SITE_COUNTER = itertools.count()


def site_key(prefix: str) -> str:
    """A process-unique pool key for one call site (``"prefix#N"``).

    Wrapper constructors call this once per site (per FSDP unit, per TP
    region) so two models over the same communicator can never share — and
    silently clobber — each other's buffers.
    """
    return f"{prefix}#{next(_SITE_COUNTER)}"


class BufferPool:
    """One rank's site-keyed buffer cache (lifetime: the world's).

    ``hits``/``misses`` count steady-state reuse vs (re)allocation — the
    property tests pin that a converged training step takes zero misses.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self._views: dict[str, tuple] = {}
        self._meta: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    def take(self, key: str, shape, dtype) -> np.ndarray:
        """The site's buffer, reused when shape/dtype match, fresh otherwise."""
        shape = (shape,) if isinstance(shape, int) else tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        buf = self._buffers.get(key)
        if buf is not None and buf.shape == shape and buf.dtype == dtype:
            self.hits += 1
            return buf
        self.misses += 1
        buf = np.empty(shape, dtype=dtype)
        self._buffers[key] = buf
        return buf

    def take_views(self, key: str, shapes, dtype):
        """One contiguous axis-0 buffer plus per-part views into it.

        *shapes* lists each part's shape; all must share trailing dims.  The
        flat buffer's axis 0 is the parts' axis-0 sizes summed, so gathering
        into the views **is** the concatenation — no copy afterwards.
        Returns ``(flat, views)``.
        """
        shapes = [tuple(int(x) for x in s) for s in shapes]
        dtype = np.dtype(dtype)
        entry = self._views.get(key)
        if entry is not None and entry[2] == shapes and entry[3] == dtype:
            self.hits += 1
            return entry[0], entry[1]
        trail = {s[1:] for s in shapes}
        if len(trail) > 1:
            raise ValueError(f"take_views parts disagree on trailing dims: {sorted(trail)}")
        self.misses += 1
        total = sum(s[0] for s in shapes)
        flat = np.empty((total, *shapes[0][1:]), dtype=dtype)
        views, lo = [], 0
        for s in shapes:
            views.append(flat[lo : lo + s[0]])
            lo += s[0]
        self._views[key] = (flat, views, shapes, dtype)
        return flat, views

    def meta(self, key: str) -> dict:
        """Mutable per-site scratch dict (e.g. cached peer part shapes)."""
        m = self._meta.get(key)
        if m is None:
            m = self._meta[key] = {}
        return m

    def allocated_bytes(self) -> int:
        """Total bytes currently held (flat view buffers counted once)."""
        held = sum(b.nbytes for b in self._buffers.values())
        held += sum(entry[0].nbytes for entry in self._views.values())
        return held
