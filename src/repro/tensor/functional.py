"""Neural-network functional primitives on :class:`~repro.tensor.Tensor`.

These cover everything the paper's architecture needs: softmax for the
attention layers, GELU for the MLPs, layer normalisation, dropout, and the
losses used by the two evaluation applications (masked MSE for the MAE and
plain / latitude-weighted MSE for weather forecasting).
"""

from __future__ import annotations

import numpy as np
from scipy import special

from .flops import add_flops
from .tensor import Tensor

__all__ = [
    "softmax",
    "log_softmax",
    "gelu",
    "relu",
    "layer_norm",
    "dropout",
    "mse_loss",
    "masked_mse_loss",
    "weighted_mse_loss",
    "cross_entropy",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along *axis*."""
    shifted_data = x.data - x.data.max(axis=axis, keepdims=True)
    exp_data = np.exp(shifted_data)
    out_data = exp_data / exp_data.sum(axis=axis, keepdims=True)
    add_flops(5 * x.size, "softmax")

    def backward(grad: np.ndarray) -> None:
        # d softmax = s * (g - sum(g * s))
        inner = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - inner))

    return x._make(out_data, (x,), backward, "softmax")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return x._make(out_data, (x,), backward, "log_softmax")


_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))
_INV_SQRT2 = float(1.0 / np.sqrt(2.0))


def gelu(x: Tensor, approximate: bool = False) -> Tensor:
    """Gaussian Error Linear Unit (exact erf form by default)."""
    add_flops(8 * x.size, "gelu")
    if approximate:
        inner = _SQRT_2_OVER_PI * (x + 0.044715 * x * x * x)
        return 0.5 * x * (1.0 + inner.tanh())

    cdf = 0.5 * (1.0 + special.erf(x.data * _INV_SQRT2))
    out_data = x.data * cdf

    def backward(grad: np.ndarray) -> None:
        pdf = np.exp(-0.5 * x.data * x.data) / np.sqrt(2.0 * np.pi)
        x._accumulate(grad * (cdf + x.data * pdf))

    return x._make(out_data.astype(x.dtype), (x,), backward, "gelu")


def relu(x: Tensor) -> Tensor:
    return x.relu()


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis with affine parameters."""
    mu = x.data.mean(axis=-1, keepdims=True)
    centered = x.data - mu
    var = (centered * centered).mean(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    x_hat = centered * inv_std
    out_data = x_hat * weight.data + bias.data
    add_flops(8 * x.size, "layer_norm")

    n = x.shape[-1]

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            axes = tuple(range(grad.ndim - 1))
            weight._accumulate((grad * x_hat).sum(axis=axes))
        if bias.requires_grad:
            axes = tuple(range(grad.ndim - 1))
            bias._accumulate(grad.sum(axis=axes))
        if x.requires_grad:
            g = grad * weight.data
            mean_g = g.mean(axis=-1, keepdims=True)
            mean_gx = (g * x_hat).mean(axis=-1, keepdims=True)
            x._accumulate(inv_std * (g - mean_g - x_hat * mean_gx))

    requires = x.requires_grad or weight.requires_grad or bias.requires_grad
    return Tensor(
        out_data.astype(x.dtype),
        requires_grad=requires,
        _parents=(x, weight, bias) if requires else (),
        _backward=backward if requires else None,
        op="layer_norm",
    )


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return x._make(x.data * mask, (x,), backward, "dropout")


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    diff = pred - target
    return (diff * diff).mean()


def masked_mse_loss(pred: Tensor, target: Tensor, mask: np.ndarray) -> Tensor:
    """MSE computed only on masked patches — the MAE reconstruction loss.

    *mask* has 1 where a patch was masked (and therefore must be predicted),
    broadcastable against ``pred``.
    """
    mask_arr = np.asarray(mask, dtype=pred.dtype)
    diff = pred - target
    num = (diff * diff * Tensor(mask_arr)).sum()
    denom = float(np.broadcast_to(mask_arr, pred.shape).sum())
    if denom == 0:
        raise ValueError("masked_mse_loss: mask selects no elements")
    return num * (1.0 / denom)


def weighted_mse_loss(pred: Tensor, target: Tensor, weights: np.ndarray) -> Tensor:
    """Latitude-weighted MSE used in weather forecasting evaluation.

    *weights* broadcast against ``pred`` and are normalised to mean 1.
    """
    w = np.asarray(weights, dtype=pred.dtype)
    w = w / w.mean()
    diff = pred - target
    return (diff * diff * Tensor(np.broadcast_to(w, pred.shape).copy())).mean()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy for integer *labels* over the last axis."""
    logp = log_softmax(logits, axis=-1)
    flat = logp.reshape(-1, logits.shape[-1])
    idx = np.asarray(labels).reshape(-1)
    picked = flat[np.arange(idx.shape[0]), idx]
    return -picked.mean()
