"""Parameter initialisation schemes (trunc-normal ViT-style, Xavier, zeros)."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = ["normal_", "trunc_normal", "xavier_uniform", "zeros", "ones", "constant"]


def normal_(shape, rng: np.random.Generator, std: float = 0.02) -> Tensor:
    """Gaussian init (ViT default std=0.02), returned as a trainable Tensor."""
    return Tensor((rng.standard_normal(shape) * std).astype(np.float32), requires_grad=True)


def trunc_normal(shape, rng: np.random.Generator, std: float = 0.02, bound: float = 2.0) -> Tensor:
    """Truncated normal: resample values beyond ``bound`` standard deviations."""
    vals = rng.standard_normal(shape)
    bad = np.abs(vals) > bound
    # A couple of resampling rounds is plenty at bound=2 (4.6% tail mass).
    for _ in range(8):
        if not bad.any():
            break
        vals[bad] = rng.standard_normal(int(bad.sum()))
        bad = np.abs(vals) > bound
    np.clip(vals, -bound, bound, out=vals)
    return Tensor((vals * std).astype(np.float32), requires_grad=True)


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0) -> Tensor:
    """Glorot/Xavier uniform for 2-D weights ``[fan_in, fan_out]``."""
    if len(shape) < 2:
        raise ValueError("xavier_uniform needs at least 2 dimensions")
    fan_in, fan_out = shape[-2], shape[-1]
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return Tensor(rng.uniform(-limit, limit, size=shape).astype(np.float32), requires_grad=True)


def zeros(shape) -> Tensor:
    return Tensor(np.zeros(shape, dtype=np.float32), requires_grad=True)


def ones(shape) -> Tensor:
    return Tensor(np.ones(shape, dtype=np.float32), requires_grad=True)


def constant(shape, value: float) -> Tensor:
    return Tensor(np.full(shape, value, dtype=np.float32), requires_grad=True)
