"""Runtime FLOP accounting.

The heavyweight kernels (``matmul``) report their floating-point operation
counts to the counter active in the current context.  This gives measured
FLOPs for small real runs, which the tests use to validate the closed-form
model in :mod:`repro.perf.flops` (the one the figure benches rely on for
multi-billion-parameter configurations).
"""

from __future__ import annotations

import contextvars
import threading

__all__ = ["FlopCounter", "current_counter", "count_flops", "add_flops"]

_active_counter: contextvars.ContextVar["FlopCounter | None"] = contextvars.ContextVar(
    "repro_flop_counter", default=None
)


class FlopCounter:
    """Accumulates floating point operations, optionally per-category."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.total = 0
        self.by_category: dict[str, int] = {}

    def add(self, flops: int, category: str = "matmul") -> None:
        with self._lock:
            self.total += flops
            self.by_category[category] = self.by_category.get(category, 0) + flops

    def reset(self) -> None:
        with self._lock:
            self.total = 0
            self.by_category.clear()

    def __repr__(self) -> str:  # pragma: no cover
        return f"FlopCounter(total={self.total}, by_category={self.by_category})"


def current_counter() -> FlopCounter | None:
    return _active_counter.get()


def add_flops(flops: int, category: str = "matmul") -> None:
    """Report *flops* to the active counter (no-op when none is bound)."""
    counter = _active_counter.get()
    if counter is not None:
        counter.add(flops, category)


class count_flops:
    """Context manager binding *counter* as the active FLOP counter."""

    def __init__(self, counter: FlopCounter | None = None) -> None:
        self.counter = counter if counter is not None else FlopCounter()
        self._token: contextvars.Token | None = None

    def __enter__(self) -> FlopCounter:
        self._token = _active_counter.set(self.counter)
        return self.counter

    def __exit__(self, *exc: object) -> None:
        assert self._token is not None
        _active_counter.reset(self._token)
