"""Live-allocation memory accounting for the autograd engine.

Every :class:`~repro.tensor.tensor.Tensor` registers the byte size of its
backing array with the tracker active in the current context when it is
created, and releases it when the array is garbage collected.  The tracker
keeps a running total and a high-water mark, which is how the paper measures
"memory usage per GPU" (``torch.cuda.max_memory_allocated`` on Frontier).

Trackers bind via a :mod:`contextvars` context variable, so every simulated
rank (thread) in :mod:`repro.dist` gets its own independent accounting.

Small-scale runs use this tracker to validate the *analytic* model in
:mod:`repro.perf.memory_model`; the figure benchmarks use the analytic model
because 26B-parameter models cannot be allocated for real.
"""

from __future__ import annotations

import contextvars
import threading
import weakref
from dataclasses import dataclass

__all__ = ["MemoryTracker", "current_tracker", "track_memory"]

_active_tracker: contextvars.ContextVar["MemoryTracker | None"] = contextvars.ContextVar(
    "repro_memory_tracker", default=None
)


@dataclass
class MemoryStats:
    """Snapshot of a tracker's counters (bytes)."""

    current: int = 0
    peak: int = 0
    total_allocated: int = 0
    allocation_count: int = 0


class MemoryTracker:
    """Tracks live tensor bytes with a peak (high-water mark).

    Thread-safe: collectives may free arrays from other threads when the
    garbage collector runs there.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._stats = MemoryStats()

    # -- accounting -------------------------------------------------------
    def allocate(self, nbytes: int) -> None:
        with self._lock:
            s = self._stats
            s.current += nbytes
            s.total_allocated += nbytes
            s.allocation_count += 1
            if s.current > s.peak:
                s.peak = s.current

    def free(self, nbytes: int) -> None:
        with self._lock:
            self._stats.current -= nbytes

    def register(self, obj: object, nbytes: int) -> None:
        """Account for *nbytes* now and release them when *obj* dies."""
        if nbytes <= 0:
            return
        self.allocate(nbytes)
        weakref.finalize(obj, self.free, nbytes)

    # -- introspection ----------------------------------------------------
    @property
    def current_bytes(self) -> int:
        return self._stats.current

    @property
    def peak_bytes(self) -> int:
        return self._stats.peak

    @property
    def total_allocated_bytes(self) -> int:
        return self._stats.total_allocated

    @property
    def allocation_count(self) -> int:
        return self._stats.allocation_count

    def reset_peak(self) -> None:
        with self._lock:
            self._stats.peak = self._stats.current

    def stats(self) -> MemoryStats:
        with self._lock:
            s = self._stats
            return MemoryStats(s.current, s.peak, s.total_allocated, s.allocation_count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"MemoryTracker({self.name!r}, current={s.current}, peak={s.peak}, "
            f"allocs={s.allocation_count})"
        )


def current_tracker() -> MemoryTracker | None:
    """The tracker bound in the current context, or ``None``."""
    return _active_tracker.get()


class track_memory:
    """Context manager binding *tracker* as the active memory tracker.

    >>> tracker = MemoryTracker()
    >>> with track_memory(tracker):
    ...     t = Tensor.zeros((1024,))          # doctest: +SKIP
    >>> tracker.peak_bytes                      # doctest: +SKIP
    4096
    """

    def __init__(self, tracker: MemoryTracker) -> None:
        self.tracker = tracker
        self._token: contextvars.Token | None = None

    def __enter__(self) -> MemoryTracker:
        self._token = _active_tracker.set(self.tracker)
        return self.tracker

    def __exit__(self, *exc: object) -> None:
        assert self._token is not None
        _active_tracker.reset(self._token)
