"""Optimizers over lists of parameter tensors (SGD, AdamW).

AdamW matches the PyTorch semantics used by the paper's training runs
(decoupled weight decay, bias-corrected moments).  Optimizer state arrays are
registered with the active memory tracker so the measured footprint includes
the "optimizer states" component that FSDP shards in the paper.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .memory import current_tracker
from .tensor import Tensor

__all__ = [
    "Optimizer",
    "SGD",
    "AdamW",
    "clip_grad_norm",
    "grad_squared_sum",
    "apply_clip_scale",
]


class Optimizer:
    """Base class: holds parameters, provides ``zero_grad``."""

    def __init__(self, params: Iterable[Tensor]) -> None:
        self.params: list[Tensor] = [p for p in params]
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Plain SGD with optional momentum and decoupled weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: list[np.ndarray | None] = [None] * len(self.params)

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                p.data *= 1.0 - self.lr * self.weight_decay
            if self.momentum:
                if self._velocity[i] is None:
                    buf = np.zeros_like(p.data)
                    tracker = current_tracker()
                    if tracker is not None:
                        tracker.register(buf, buf.nbytes)
                    self._velocity[i] = buf
                v = self._velocity[i]
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class AdamW(Optimizer):
    """AdamW (decoupled weight decay), the optimizer used throughout the paper."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m: list[np.ndarray | None] = [None] * len(self.params)
        self._v: list[np.ndarray | None] = [None] * len(self.params)

    def _state_for(self, i: int, p: Tensor) -> tuple[np.ndarray, np.ndarray]:
        if self._m[i] is None:
            m = np.zeros_like(p.data, dtype=np.float32)
            v = np.zeros_like(p.data, dtype=np.float32)
            tracker = current_tracker()
            if tracker is not None:
                tracker.register(m, m.nbytes)
                tracker.register(v, v.nbytes)
            self._m[i], self._v[i] = m, v
        return self._m[i], self._v[i]  # type: ignore[return-value]

    def step(self) -> None:
        self._step += 1
        t = self._step
        bc1 = 1.0 - self.beta1**t
        bc2 = 1.0 - self.beta2**t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            m, v = self._state_for(i, p)
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            if self.weight_decay:
                p.data *= 1.0 - self.lr * self.weight_decay
            m_hat = m / bc1
            v_hat = v / bc2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        """Snapshot the moment estimates and step count for checkpointing.

        Uninitialized slots (parameters never stepped) are stored as zeros so
        the snapshot is always dense — loading them back reproduces the same
        update trajectory because fresh state is zero-initialized anyway.
        """
        return {
            "step": self._step,
            "m": [
                (m.copy() if m is not None else np.zeros_like(p.data, dtype=np.float32))
                for m, p in zip(self._m, self.params)
            ],
            "v": [
                (v.copy() if v is not None else np.zeros_like(p.data, dtype=np.float32))
                for v, p in zip(self._v, self.params)
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a :meth:`state_dict` snapshot (shapes must match params)."""
        ms, vs = state["m"], state["v"]
        if len(ms) != len(self.params) or len(vs) != len(self.params):
            raise ValueError(
                f"optimizer state for {len(ms)} params cannot load into {len(self.params)}"
            )
        for i, p in enumerate(self.params):
            m = np.asarray(ms[i], dtype=np.float32)
            v = np.asarray(vs[i], dtype=np.float32)
            if m.shape != p.data.shape or v.shape != p.data.shape:
                raise ValueError(
                    f"optimizer state shape {m.shape}/{v.shape} does not match "
                    f"parameter shape {p.data.shape}"
                )
            self._m[i] = m.copy()
            self._v[i] = v.copy()
        self._step = int(state["step"])

    def state_bytes(self) -> int:
        """Bytes held by optimizer state (for memory accounting tests)."""
        total = 0
        for m in self._m:
            if m is not None:
                total += m.nbytes
        for v in self._v:
            if v is not None:
                total += v.nbytes
        return total


def grad_squared_sum(params: Sequence[Tensor]) -> float:
    """Sum of squared gradient entries over *params* (float64 accumulate).

    The local half of global-norm clipping — distributed variants AllReduce
    this before applying :func:`apply_clip_scale`.
    """
    sq = 0.0
    for p in params:
        if p.grad is not None:
            sq += float((p.grad.astype(np.float64) ** 2).sum())
    return sq


def apply_clip_scale(params: Sequence[Tensor], norm: float, max_norm: float) -> None:
    """Scale every gradient by ``max_norm / norm`` when *norm* exceeds it."""
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale


def clip_grad_norm(params: Sequence[Tensor], max_norm: float) -> float:
    """Global-norm gradient clipping; returns the pre-clip norm."""
    norm = float(np.sqrt(grad_squared_sum(params)))
    apply_clip_scale(params, norm, max_norm)
    return norm
