"""Activation (gradient) checkpointing.

Trades compute for memory exactly like ``torch.utils.checkpoint``: the
forward pass inside :func:`checkpoint` runs without recording the autograd
graph (so no intermediate activations are retained); the backward pass
re-runs the function with grad enabled and backpropagates through the
recomputed sub-graph.

In the paper's regime — where activations of the channel stage dominate
memory — checkpointing the transformer blocks is the standard complementary
lever (FSDP + checkpointing is how ORBIT fits its largest models), so the
reproduction provides it and tests that peak memory actually drops.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .tensor import Tensor, no_grad

__all__ = ["checkpoint", "checkpoint_sequential"]


def checkpoint(fn: Callable[..., Tensor], *inputs: Tensor) -> Tensor:
    """Run ``fn(*inputs)`` without storing intermediate activations.

    ``fn`` must be a pure function of its tensor inputs and any captured
    *parameters* (captured parameters do receive gradients on recompute).
    Returns a tensor whose backward recomputes the forward.
    """
    with no_grad():
        out_value = fn(*[Tensor(t.data) for t in inputs])
    if not isinstance(out_value, Tensor):
        raise TypeError("checkpointed function must return a single Tensor")

    def backward(grad: np.ndarray) -> None:
        # Recompute with graph recording, seed the recomputed output with
        # the incoming gradient; leaf inputs then collect their grads.
        detached = [Tensor(t.data, requires_grad=t.requires_grad) for t in inputs]
        out = fn(*detached)
        if out.requires_grad:
            out.backward(grad)
        for original, copy in zip(inputs, detached):
            if original.requires_grad and copy.grad is not None:
                original._accumulate(copy.grad)

    # Conservative: grads may flow through captured parameters even when no
    # *input* tensor requires grad, so record the node whenever grad mode is
    # on (matching torch.utils.checkpoint semantics).
    from .tensor import is_grad_enabled

    requires = is_grad_enabled()
    return Tensor(
        out_value.data,
        requires_grad=requires,
        _parents=tuple(inputs) if requires else (),
        _backward=backward if requires else None,
        op="checkpoint",
    )


def checkpoint_sequential(blocks, x: Tensor) -> Tensor:
    """Checkpoint a list of modules one by one (per-block recompute, the
    granularity used for transformer stacks)."""
    for block in blocks:
        x = checkpoint(lambda t, b=block: b(t), x)
    return x
