"""A NumPy reverse-mode autograd engine.

This is the PyTorch substitute for the D-CHAG reproduction: a :class:`Tensor`
wraps a ``numpy.ndarray`` and records enough of the computation graph to run
backpropagation.  The engine is deliberately small but complete enough to
train the paper's foundation-model architecture (per-channel tokenization,
cross-attention channel aggregation, ViT blocks, MAE decoder) end to end.

Design notes
------------
* Gradients are plain ``numpy`` arrays stored on the leaf tensors.
* Broadcasting follows NumPy semantics; backward passes un-broadcast by
  summing over the broadcast axes.
* ``matmul`` reports FLOPs to :mod:`repro.tensor.flops` so that small real
  runs can validate the analytic FLOP model used for the paper's figures.
* Newly-owned arrays register their byte size with the memory tracker from
  :mod:`repro.tensor.memory`, giving the high-water-mark measurements that
  stand in for ``torch.cuda.max_memory_allocated``.
"""

from __future__ import annotations

import contextvars
from typing import Callable, Iterable, Sequence

import numpy as np

from .flops import add_flops
from .memory import current_tracker

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_grad_enabled: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_grad_enabled", default=True
)


def is_grad_enabled() -> bool:
    """Whether operations record the autograd graph in this context."""
    return _grad_enabled.get()


class no_grad:
    """Context manager disabling graph recording (like ``torch.no_grad``)."""

    def __enter__(self) -> None:
        self._token = _grad_enabled.set(False)

    def __exit__(self, *exc: object) -> None:
        _grad_enabled.reset(self._token)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce *grad* back to *shape* by summing the broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected array-like, got Tensor")
    if isinstance(value, np.generic):
        # NumPy scalar (e.g. the result of a 0-d reduction): keep its dtype —
        # downcasting here would silently truncate float64 loss chains.
        arr = np.asarray(value)
        if dtype is not None and arr.dtype != dtype:
            arr = arr.astype(dtype)
        return arr
    arr = np.asarray(value)
    if dtype is not None and arr.dtype != dtype:
        arr = arr.astype(dtype)
    elif arr.dtype == np.float64 and dtype is None:
        # Default to float32, matching the training precision used on Frontier.
        arr = arr.astype(np.float32)
    elif not np.issubdtype(arr.dtype, np.floating) and dtype is None:
        arr = arr.astype(np.float32)
    return arr


class Tensor:
    """An array with an optional autograd history."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "op", "__weakref__")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        *,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
        op: str = "",
        dtype=None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        if not isinstance(data, np.ndarray):
            data = _as_array(data, dtype)
        elif dtype is not None and data.dtype != dtype:
            data = data.astype(dtype)
        elif not np.issubdtype(data.dtype, np.floating):
            # Tensors are floating-point; integer inputs become float32
            # (index arrays stay plain numpy and never enter Tensors).
            data = data.astype(np.float32)
        self.data: np.ndarray = data
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._parents = _parents if self.requires_grad or _backward is not None else ()
        self._backward = _backward
        self.op = op
        tracker = current_tracker()
        if tracker is not None and data.base is None:
            tracker.register(data, data.nbytes)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(shape: Sequence[int] | int, dtype=np.float32, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def ones(shape: Sequence[int] | int, dtype=np.float32, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def full(shape: Sequence[int] | int, value: float, dtype=np.float32) -> "Tensor":
        return Tensor(np.full(shape, value, dtype=dtype))

    @staticmethod
    def arange(*args, dtype=np.float32) -> "Tensor":
        return Tensor(np.arange(*args, dtype=dtype))

    @staticmethod
    def randn(
        shape: Sequence[int] | int,
        rng: np.random.Generator | None = None,
        std: float = 1.0,
        dtype=np.float32,
        requires_grad: bool = False,
    ) -> "Tensor":
        rng = rng if rng is not None else np.random.default_rng()
        return Tensor(
            (rng.standard_normal(shape) * std).astype(dtype), requires_grad=requires_grad
        )

    @staticmethod
    def from_numpy(arr: np.ndarray, requires_grad: bool = False) -> "Tensor":
        return Tensor(arr, requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def astype(self, dtype) -> "Tensor":
        out_data = self.data.astype(dtype)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.astype(self.data.dtype))

        return self._make(out_data, (self,), backward, "astype")

    def __len__(self) -> int:
        return self.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag}, op={self.op!r})"

    # ------------------------------------------------------------------
    # autograd plumbing
    # ------------------------------------------------------------------
    def _make(
        self,
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        return Tensor(
            data,
            requires_grad=requires,
            _parents=parents if requires else (),
            _backward=backward if requires else None,
            op=op,
        )

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            buf = np.asarray(grad, dtype=self.data.dtype)
            if buf.base is not None or buf is grad:
                buf = buf.copy()
            self.grad = buf
            tracker = current_tracker()
            if tracker is not None:
                tracker.register(buf, buf.nbytes)
        else:
            self.grad += grad

    def backward(self, gradient: np.ndarray | None = None) -> None:
        """Run reverse-mode accumulation from this tensor."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if gradient is None:
            if self.size != 1:
                raise RuntimeError("gradient must be provided for non-scalar outputs")
            gradient = np.ones_like(self.data)
        gradient = np.asarray(gradient, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(gradient)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # elementwise arithmetic
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(_as_array(other, self.data.dtype))

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(-grad, other.shape))

        return self._make(out_data, (self, other), backward, "sub")

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) - self

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data * other.data), other.shape)
            )

        return self._make(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward, "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward, "pow")

    # comparisons produce detached float masks (useful for relu-style ops)
    def __gt__(self, other) -> "Tensor":
        other = other.data if isinstance(other, Tensor) else other
        return Tensor((self.data > other).astype(self.data.dtype))

    def __lt__(self, other) -> "Tensor":
        other = other.data if isinstance(other, Tensor) else other
        return Tensor((self.data < other).astype(self.data.dtype))

    # ------------------------------------------------------------------
    # matmul
    # ------------------------------------------------------------------
    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        a, b = self.data, other.data
        out_data = a @ b
        # FLOPs: 2 * (product of output shape) * inner dim.
        inner = a.shape[-1]
        add_flops(2 * int(np.prod(out_data.shape)) * inner, "matmul")

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                gb = np.swapaxes(b, -1, -2)
                ga = grad @ gb
                add_flops(2 * int(np.prod(ga.shape)) * grad.shape[-1], "matmul_bwd")
                self._accumulate(_unbroadcast(ga, self.shape))
            if other.requires_grad:
                ga_t = np.swapaxes(a, -1, -2)
                gb2 = ga_t @ grad
                add_flops(2 * int(np.prod(gb2.shape)) * ga_t.shape[-1], "matmul_bwd")
                other._accumulate(_unbroadcast(gb2, other.shape))

        return self._make(out_data, (self, other), backward, "matmul")

    def matmul(self, other: "Tensor") -> "Tensor":
        return self @ other

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.shape).astype(self.data.dtype))

        return self._make(np.asarray(out_data), (self,), backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            denom = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            denom = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / denom)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            o = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                o = np.expand_dims(o, axis)
            mask = (self.data == o).astype(self.data.dtype)
            # Split gradient between ties, matching numerical gradcheck.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / counts)

        return self._make(np.asarray(out_data), (self,), backward, "max")

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(np.log(self.data), (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return self._make(out_data, (self,), backward, "sqrt")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data * out_data))

        return self._make(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(self.data.dtype)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward, "relu")

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return self._make(np.abs(self.data), (self,), backward, "abs")

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    @staticmethod
    def where(condition: np.ndarray, a: "Tensor", b: "Tensor") -> "Tensor":
        """Elementwise select (condition is a non-differentiable mask)."""
        cond = np.asarray(condition, dtype=bool)
        mask = cond.astype(a.data.dtype)
        return a * Tensor(mask) + b * Tensor(1.0 - mask)

    def clip(self, lo: float, hi: float) -> "Tensor":
        out_data = np.clip(self.data, lo, hi)
        mask = ((self.data >= lo) & (self.data <= hi)).astype(self.data.dtype)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward, "clip")

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.shape))

        return self._make(out_data, (self,), backward, "reshape")

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inv = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inv))

        return self._make(self.data.transpose(axes), (self,), backward, "transpose")

    def swapaxes(self, a: int, b: int) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.swapaxes(grad, a, b))

        return self._make(np.swapaxes(self.data, a, b), (self,), backward, "swapaxes")

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, idx, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward, "getitem")

    def expand_dims(self, axis: int) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.squeeze(grad, axis=axis))

        return self._make(np.expand_dims(self.data, axis), (self,), backward, "expand_dims")

    def squeeze(self, axis: int) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.expand_dims(grad, axis=axis))

        return self._make(np.squeeze(self.data, axis=axis), (self,), backward, "squeeze")

    def broadcast_to(self, shape: Sequence[int]) -> "Tensor":
        shape = tuple(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))

        return self._make(
            np.broadcast_to(self.data, shape).copy(), (self,), backward, "broadcast_to"
        )

    def pad(self, pad_width: Sequence[tuple[int, int]]) -> "Tensor":
        pad_width = tuple(tuple(p) for p in pad_width)
        out_data = np.pad(self.data, pad_width)
        slices = tuple(
            slice(lo, lo + dim) for (lo, _hi), dim in zip(pad_width, self.shape)
        )

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad[slices])

        return self._make(out_data, (self,), backward, "pad")

    # ------------------------------------------------------------------
    # concatenation / stacking (static helpers)
    # ------------------------------------------------------------------
    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = list(tensors)
        datas = [t.data for t in tensors]
        out_data = np.concatenate(datas, axis=axis)
        sizes = [d.shape[axis] for d in datas]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
                idx = [slice(None)] * grad.ndim
                idx[axis] = slice(lo, hi)
                t._accumulate(grad[tuple(idx)])

        requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
        return Tensor(
            out_data,
            requires_grad=requires,
            _parents=tuple(tensors) if requires else (),
            _backward=backward if requires else None,
            op="concat",
        )

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        return Tensor.concat([t.expand_dims(axis) for t in tensors], axis=axis)

    def split(self, sections: int, axis: int = 0) -> list["Tensor"]:
        """Split into equal chunks along *axis* (differentiable)."""
        n = self.shape[axis]
        if n % sections != 0:
            raise ValueError(f"cannot split axis of size {n} into {sections} equal parts")
        step = n // sections
        out = []
        for i in range(sections):
            idx = [slice(None)] * self.ndim
            idx[axis] = slice(i * step, (i + 1) * step)
            out.append(self[tuple(idx)])
        return out

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def flatten(self, start: int = 0) -> "Tensor":
        shape = self.shape[:start] + (-1,)
        return self.reshape(shape)


def _tensor_iter(values: Iterable) -> list[Tensor]:  # pragma: no cover - helper
    return [v if isinstance(v, Tensor) else Tensor(v) for v in values]
