"""NumPy autograd substrate (the PyTorch substitute for this reproduction).

Public surface:

* :class:`Tensor` — array with reverse-mode autograd, :func:`no_grad`
* :mod:`repro.tensor.functional` — softmax / gelu / layer_norm / losses
* :mod:`repro.tensor.init` — parameter initialisers
* :mod:`repro.tensor.optim` — SGD / AdamW
* :class:`MemoryTracker` + :func:`track_memory` — live byte accounting
* :class:`FlopCounter` + :func:`count_flops` — runtime FLOP accounting
"""

from . import functional, init, optim
from .checkpoint import checkpoint, checkpoint_sequential
from .flops import FlopCounter, add_flops, count_flops, current_counter
from .grad_check import check_gradients, numerical_grad
from .memory import MemoryTracker, current_tracker, track_memory
from .optim import SGD, AdamW, Optimizer, clip_grad_norm
from .tensor import Tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "init",
    "optim",
    "SGD",
    "AdamW",
    "Optimizer",
    "clip_grad_norm",
    "MemoryTracker",
    "track_memory",
    "current_tracker",
    "FlopCounter",
    "count_flops",
    "current_counter",
    "add_flops",
    "check_gradients",
    "numerical_grad",
    "checkpoint",
    "checkpoint_sequential",
]
