"""Numerical gradient checking used by the autograd test-suite."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_grad", "check_gradients"]


def numerical_grad(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    wrt: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. input *wrt*.

    Inputs are promoted to float64 for accuracy.
    """
    arrays = [np.asarray(a, dtype=np.float64).copy() for a in inputs]
    target = arrays[wrt]
    grad = np.zeros_like(target)
    it = np.nditer(target, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = target[idx]
        target[idx] = orig + eps
        hi = float(fn(*[Tensor(a, dtype=np.float64) for a in arrays]).sum().item())
        target[idx] = orig - eps
        lo = float(fn(*[Tensor(a, dtype=np.float64) for a in arrays]).sum().item())
        target[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    atol: float = 1e-4,
    rtol: float = 1e-3,
    eps: float = 1e-5,
) -> None:
    """Assert analytic grads match central differences for every input."""
    tensors = [Tensor(np.asarray(a, dtype=np.float64), requires_grad=True, dtype=np.float64) for a in inputs]
    out = fn(*tensors).sum()
    out.backward()
    for i, t in enumerate(tensors):
        num = numerical_grad(fn, inputs, i, eps=eps)
        ana = t.grad if t.grad is not None else np.zeros_like(num)
        np.testing.assert_allclose(
            ana, num, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for input {i}",
        )
