"""Markdown report generator: all analytic paper figures in one document.

``python -m repro report`` writes the memory/throughput tables for Figs. 6,
7, 8, 9, 13, 14, 15 and 16 (the convergence figures 11/12 require training —
run their benches instead) so a user can regenerate the paper's evaluation
without pytest.
"""

from __future__ import annotations

import io
from pathlib import Path

from .core import plan_channel_stage
from .perf import (
    FIGURE_BATCH,
    GiB,
    ParallelPlan,
    Workload,
    estimate_flops,
    estimate_memory,
    frontier,
    named_model,
    sustained_estimate,
    throughput_gain,
)
from .perf.throughput import global_batch_throughput

__all__ = ["build_report", "write_report"]

MACHINE = frontier()


def _md_table(headers: list[str], rows: list[list]) -> str:
    out = ["| " + " | ".join(headers) + " |", "|" + "---|" * len(headers)]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def _gb(x: float) -> str:
    return f"{x / GiB:.1f}"


def fig6_section() -> str:
    rows = []
    for name in ("100M", "1B", "3B"):
        cfg = named_model(name)
        for ch in (128, 256, 512, 1024):
            w = Workload(ch, FIGURE_BATCH["fig6"])
            mem = estimate_memory(cfg, w)
            fl = estimate_flops(cfg, w)
            share = (fl.tokenization + fl.aggregation) / fl.total
            rows.append(
                [name, ch, _gb(mem.total), "ok" if mem.fits(MACHINE) else "OOM", f"{share:.0%}"]
            )
    return "## Fig. 6 — single-GPU capacity\n\n" + _md_table(
        ["model", "channels", "GB/GPU", "fits", "channel-stage FLOP share"], rows
    )


def fig7_section() -> str:
    rows = []
    for name, batch_key, tps in (("1.7B", "fig7_1.7B", (1, 2, 4, 8)), ("7B", "fig7_7B", (2, 4, 8, 16))):
        cfg = named_model(name)
        for ch in (256, 512, 1024) if name == "1.7B" else (128, 256, 512):
            for tp in tps:
                mem = estimate_memory(cfg, Workload(ch, FIGURE_BATCH[batch_key]), ParallelPlan("tp", tp=tp))
                rows.append(
                    [name, ch, tp, _gb(mem.total), f"{mem.tok_plus_agg_fraction:.0%}",
                     "ok" if mem.fits(MACHINE) else "OOM"]
                )
    return "## Fig. 7 — TP memory sweep\n\n" + _md_table(
        ["model", "channels", "TP", "GB/GPU", "tok+agg", "fits"], rows
    )


def fig8_section() -> str:
    cfg = named_model("1.7B")
    rows = []
    for ch, tp in ((512, 2), (1024, 8)):
        w = Workload(ch, FIGURE_BATCH["fig8"])
        base = estimate_memory(cfg, w, ParallelPlan("tp", tp=tp))
        dist = estimate_memory(cfg, w, ParallelPlan("dist_tok", tp=tp))
        rows.append(
            [ch, tp, _gb(base.tokenization + base.aggregation), _gb(base.tokenization),
             _gb(dist.tokenization), _gb(dist.tokenization + dist.aggregation)]
        )
    return "## Fig. 8 — distributed tokenization (1.7B)\n\n" + _md_table(
        ["channels", "TP", "base tok+agg", "base tok", "dist tok", "dist tok+agg"], rows
    )


def fig9_section() -> str:
    cfg = named_model("1.7B")
    rows = []
    for ch, tp in ((512, 2), (1024, 8)):
        base = ParallelPlan("tp", tp=tp)
        for kind in ("cross", "linear"):
            for fanout in (0, 2, 4, 8):
                plan = ParallelPlan("dchag", tp=tp, dchag_kind=kind, dchag_fanout=fanout)
                g = throughput_gain(cfg, ch, plan, base, MACHINE)
                rows.append([ch, f"{kind}-Tree{fanout}", f"{g:+.0%}"])
    return "## Fig. 9 — tree sweep (1.7B, gain vs TP-only)\n\n" + _md_table(
        ["channels", "config", "gain/GPU"], rows
    )


def fig13_section() -> str:
    rows = []
    for name, channels in (("7B", (256, 512)), ("15B", (128, 256)), ("26B", (64, 128))):
        cfg = named_model(name)
        base = ParallelPlan("tp", tp=16)
        for ch in channels:
            for kind in ("linear", "cross"):
                g = throughput_gain(
                    cfg, ch, ParallelPlan("dchag", tp=16, dchag_kind=kind), base, MACHINE
                )
                rows.append([name, ch, f"D-CHAG-{'L' if kind == 'linear' else 'C'}", f"{g:+.0%}"])
    return "## Fig. 13 — model-size scaling (gain vs TP16)\n\n" + _md_table(
        ["model", "channels", "variant", "gain"], rows
    )


def fig14_section() -> str:
    cfg = named_model("26B")
    b = FIGURE_BATCH["fig14"]
    rows = []
    for tp in (8, 16, 32, 64):
        base = estimate_memory(cfg, Workload(256, b), ParallelPlan("tp", tp=tp))
        dchag = estimate_memory(cfg, Workload(512, b), ParallelPlan("dchag", tp=tp, dchag_kind="linear"))
        rows.append(
            [tp, _gb(base.total), "OOM" if not base.fits(MACHINE) else "ok",
             _gb(dchag.total), f"{dchag.utilization(MACHINE):.0%}"]
        )
    return "## Fig. 14 — 26B memory wall (TP@256ch vs D-CHAG@512ch)\n\n" + _md_table(
        ["GPUs", "TP GB/GPU", "TP fits", "D-CHAG GB/GPU", "D-CHAG util"], rows
    )


def fig15_section() -> str:
    cfg = named_model("7B")
    combos = (
        ParallelPlan("tp", tp=16),
        ParallelPlan("tp", tp=8, fsdp=2),
        ParallelPlan("dchag", tp=16, dchag_kind="linear"),
        ParallelPlan("dchag", tp=8, dchag_kind="linear", dp=2),
        ParallelPlan("dchag", tp=8, dchag_kind="linear", fsdp=2),
        ParallelPlan("dchag", tp=2, dchag_kind="linear", fsdp=4, dp=2),
    )
    rows = []
    for plan in combos:
        est = sustained_estimate(cfg, 500, plan, MACHINE)
        rows.append(
            [plan.label, est.micro_batch, _gb(est.memory.total),
             f"{est.tflops_per_node(MACHINE):.0f}"]
        )
    return "## Fig. 15 — hybrid combos (7B / 500ch / 16 GCDs)\n\n" + _md_table(
        ["combination", "micro-batch", "GB/GPU", "TFLOP/s/node"], rows
    )


def fig16_section() -> str:
    cfg = named_model("7B")
    baseline = ParallelPlan("tp", tp=16, dp=64)
    hybrid = ParallelPlan("dchag", tp=8, dchag_kind="linear", dp=128)
    rows = []
    for gb_size in (512, 1024, 2048, 4096, 8192):
        b = global_batch_throughput(cfg, 500, baseline, MACHINE, gb_size)
        h = global_batch_throughput(cfg, 500, hybrid, MACHINE, gb_size)
        rows.append([gb_size, f"{b:,.0f}", f"{h:,.0f}", f"{h / b - 1:+.0%}"])
    return "## Fig. 16 — batch scaling at 1,024 GCDs (7B / 500ch)\n\n" + _md_table(
        ["global batch", "baseline TFLOP/s", "Hybrid D-CHAG TFLOP/s", "gain"], rows
    )


def planner_section() -> str:
    choice = plan_channel_stage(named_model("7B"), Workload(500, 8), MACHINE, tp=8)
    return (
        "## Planner recommendation (7B / 500ch / one node)\n\n"
        f"`{choice.plan.label}` — {choice.estimate.tflops_per_gpu:.1f} TFLOP/s/GPU, "
        f"{choice.estimate.memory.total / GiB:.1f} GB/GPU"
    )


def build_report() -> str:
    buf = io.StringIO()
    buf.write("# D-CHAG analytic figure report\n\n")
    buf.write(
        "Regenerated from the calibrated Frontier models "
        "(see EXPERIMENTS.md for paper-vs-measured and deviations; Figs. 11/12 "
        "are training experiments — run `pytest benchmarks/bench_fig11* "
        "benchmarks/bench_fig12* -s`).\n\n"
    )
    for section in (
        fig6_section,
        fig7_section,
        fig8_section,
        fig9_section,
        fig13_section,
        fig14_section,
        fig15_section,
        fig16_section,
        planner_section,
    ):
        buf.write(section())
        buf.write("\n\n")
    return buf.getvalue()


def write_report(path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(build_report())
    return path
