"""Chrome Trace Event export for virtual-clock timelines.

Lowers a :class:`~repro.perf.clock.VirtualClock`'s archived per-rank
timelines — live worlds, ``measure_plan(..., keep_world=True)`` results and
:class:`~repro.perf.schedule.ReplayResult`\\ s alike (anything with a
``.clock``) — to the Chrome Trace Event JSON format, viewable in
``chrome://tracing`` or https://ui.perfetto.dev.

Track convention (all timestamps in microseconds of virtual time):

    ======================  ==============================================
    trace surface           clock source
    ======================  ==============================================
    process ``rank N``      one per world rank
    thread ``compute``      :class:`ComputeInterval` spans (``"X"``)
    thread ``comm channel`` :class:`CommInterval` channel occupancy
                            (``"X"``, args carry payload/wire/link/exposed)
    flow ``s``/``t``/``f``  one per multi-rank collective, tying the
                            group's per-rank slices together (grouped by
                            the interval's ``group`` identity — concurrent
                            symmetric collectives stay distinct flows)
    counter ``exposed:*``   cumulative exposed seconds per phase, stepped
                            at each settled collective's end
    counter ``wire:*``      cumulative wire bytes per phase
    async ``inflight``      issue→end window of each eager collective
                            (``"b"``/``"e"`` nestables on the issuing rank)
    ======================  ==============================================

The final value of every ``exposed:<phase>`` counter equals
``clock.exposed_seconds(rank, phase)`` exactly (property-tested), so the
trace is a faithful rendering of the simulator's books, not a parallel
account.  :func:`validate_trace` checks the structural invariants the
tests and the ``--smoke`` CI gate rely on.

CLI::

    python -m repro.obs.trace --tp 2 --dp 2 --out step.trace.json
    python -m repro.obs.trace --schedule captured.json --steps 3 --out replay.trace.json
    python -m repro.obs.trace --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from ..perf.clock import CommInterval, VirtualClock

__all__ = [
    "COMPUTE_TID",
    "COMM_TID",
    "chrome_trace",
    "export_trace",
    "validate_trace",
    "main",
]

#: Thread ids within each rank's process.
COMPUTE_TID = 0
COMM_TID = 1

_US = 1e6  # trace timestamps are microseconds; the clock runs in seconds


def _clock_of(source: Any) -> VirtualClock:
    """Accept a clock, a World, a ReplayResult — anything with ``.clock``."""
    clock = getattr(source, "clock", source)
    if not hasattr(clock, "timeline") or not hasattr(clock, "world_size"):
        raise TypeError(
            f"cannot extract a VirtualClock from {type(source).__name__!r}: "
            "pass a clock, a World, or a ReplayResult"
        )
    return clock


def chrome_trace(source: Any, label: str = "repro") -> dict:
    """Render *source*'s archived timelines as a Chrome trace object.

    Returns ``{"traceEvents": [...], "otherData": {...}}`` — dump it with
    ``json.dump`` (or :func:`export_trace`) and load the file in Perfetto.
    Eager collectives still pending are not rendered; finalize/drain the
    world first (``run_spmd`` worlds already are).
    """
    clock = _clock_of(source)
    n = clock.world_size
    events: list[dict] = []

    for rank in range(n):
        events.append(_meta(rank, COMPUTE_TID, "process_name", name=f"rank {rank}"))
        events.append(
            _meta(rank, COMPUTE_TID, "process_sort_index", sort_index=rank)
        )
        events.append(_meta(rank, COMPUTE_TID, "thread_name", name="compute"))
        events.append(_meta(rank, COMM_TID, "thread_name", name="comm channel"))

    # One flow per multi-rank collective: members share (group, op, phase,
    # start, end) — the group identity keeps concurrent symmetric
    # collectives (e.g. the two TP groups of a tp2×dp2 world) distinct.
    flows: dict[tuple, list[CommInterval]] = {}
    async_id = 0
    for rank in range(n):
        counters: dict[str, float] = {}
        for iv in clock.timeline(rank):
            ts = iv.start * _US
            dur = (iv.end - iv.start) * _US
            if isinstance(iv, CommInterval):
                events.append(
                    {
                        "ph": "X", "pid": rank, "tid": COMM_TID,
                        "ts": ts, "dur": dur,
                        "name": iv.op, "cat": iv.phase or "comm",
                        "args": {
                            "phase": iv.phase,
                            "issue_us": iv.issue * _US,
                            "exposed_us": iv.exposed * _US,
                            "payload_bytes": iv.payload_bytes,
                            "wire_bytes": iv.wire_bytes,
                            "link": iv.link,
                            "group": list(iv.group),
                        },
                    }
                )
                if len(iv.group) > 1:
                    flows.setdefault(
                        (iv.group, iv.op, iv.phase, iv.start, iv.end), []
                    ).append(iv)
                if clock.is_eager(iv.op, iv.phase):
                    # The in-flight window: dispatch to completion on the
                    # issuing rank, rendered as its own nestable async row.
                    async_id += 1
                    common = {
                        "cat": "inflight", "id": async_id, "pid": rank,
                        "tid": COMM_TID, "name": iv.op,
                    }
                    events.append({"ph": "b", "ts": iv.issue * _US, **common})
                    events.append({"ph": "e", "ts": iv.end * _US, **common})
                # Cumulative per-phase counters, stepped at settlement.
                # Archive order is monotone in ``end`` per rank, so each
                # counter series is emitted with non-decreasing timestamps.
                for prefix, delta, unit in (
                    ("exposed", iv.exposed, "seconds"),
                    ("wire", float(iv.wire_bytes), "bytes"),
                ):
                    key = f"{prefix}:{iv.phase}"
                    counters[key] = counters.get(key, 0.0) + delta
                    events.append(
                        {
                            "ph": "C", "pid": rank, "tid": COMM_TID,
                            "ts": iv.end * _US, "name": key,
                            "args": {unit: counters[key]},
                        }
                    )
            else:
                events.append(
                    {
                        "ph": "X", "pid": rank, "tid": COMPUTE_TID,
                        "ts": ts, "dur": dur,
                        "name": iv.label or iv.phase, "cat": iv.phase,
                        "args": {"phase": iv.phase},
                    }
                )

    for flow_id, (key, members) in enumerate(sorted(flows.items()), start=1):
        _group, op, phase, start, _end = key
        members.sort(key=lambda iv: iv.rank)
        for pos, iv in enumerate(members):
            ph = "s" if pos == 0 else ("f" if pos == len(members) - 1 else "t")
            ev = {
                "ph": ph, "pid": iv.rank, "tid": COMM_TID,
                "ts": start * _US, "name": op, "cat": phase or "comm",
                "id": flow_id,
            }
            if ph == "f":
                ev["bp"] = "e"  # bind to the enclosing slice, not the next one
            events.append(ev)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs.trace",
            "label": label,
            "world_size": n,
            "machine": clock.machine.name,
            "eager_phases": sorted(clock.eager_phases),
            "elapsed_us": clock.elapsed() * _US,
        },
    }


def _meta(pid: int, tid: int, meta_name: str, **args) -> dict:
    return {"ph": "M", "pid": pid, "tid": tid, "ts": 0, "name": meta_name, "args": args}


def export_trace(source: Any, path: str | Path, label: str = "repro") -> dict:
    """Render and write a trace JSON file; returns the trace object."""
    trace = chrome_trace(source, label=label)
    p = Path(path)
    if p.parent != Path(""):
        p.parent.mkdir(parents=True, exist_ok=True)
    with open(p, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
    return trace


def validate_trace(trace: Any) -> list[str]:
    """Structural lint of a trace object; returns problems (empty = valid).

    Checks the invariants every export must hold: required keys per event,
    non-negative µs durations, per-track ``"X"`` slices sorted and
    non-overlapping, each flow id carrying exactly one start and one
    finish, balanced ``"b"``/``"e"`` async pairs, and per-counter values
    non-decreasing (ours are cumulative).
    """
    problems: list[str] = []
    if not isinstance(trace, dict) or not isinstance(trace.get("traceEvents"), list):
        return ["trace must be a dict with a traceEvents list"]
    slices: dict[tuple, list[tuple[float, float]]] = {}
    flow_phs: dict[Any, list[str]] = {}
    async_phs: dict[Any, list[str]] = {}
    counters: dict[tuple, list[float]] = {}
    for i, ev in enumerate(trace["traceEvents"]):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        missing = [k for k in ("ph", "pid", "tid", "ts") if k not in ev]
        if missing:
            problems.append(f"event {i}: missing keys {missing}")
            continue
        ph = ev["ph"]
        if ph != "M" and "name" not in ev:
            problems.append(f"event {i}: {ph!r} event has no name")
        if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
            problems.append(f"event {i}: bad ts {ev['ts']!r}")
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: X event with bad dur {dur!r}")
                continue
            slices.setdefault((ev["pid"], ev["tid"]), []).append(
                (float(ev["ts"]), float(ev["ts"]) + float(dur))
            )
        elif ph in ("s", "t", "f"):
            flow_phs.setdefault(ev.get("id"), []).append(ph)
        elif ph in ("b", "e"):
            async_phs.setdefault((ev.get("cat"), ev.get("id")), []).append(ph)
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"event {i}: counter without args")
                continue
            for series, value in args.items():
                counters.setdefault((ev["pid"], ev["name"], series), []).append(
                    float(value)
                )
    for (pid, tid), spans in slices.items():
        spans.sort()
        for (_, prev_end), (start, _) in zip(spans, spans[1:]):
            if start < prev_end - 1e-6:  # µs-scale tolerance for float lowering
                problems.append(
                    f"track pid={pid} tid={tid}: overlapping X slices "
                    f"(start {start} < previous end {prev_end})"
                )
                break
    for flow_id, phs in flow_phs.items():
        if phs.count("s") != 1 or phs.count("f") != 1:
            problems.append(
                f"flow {flow_id}: expected one 's' and one 'f', got {sorted(phs)}"
            )
    for key, phs in async_phs.items():
        if phs.count("b") != phs.count("e"):
            problems.append(f"async {key}: unbalanced b/e pairs {sorted(phs)}")
    for (pid, name, series), values in counters.items():
        if any(b < a - 1e-9 for a, b in zip(values, values[1:])):
            problems.append(
                f"counter pid={pid} {name}[{series}]: values not non-decreasing"
            )
    return problems


def _trace_from_args(args) -> tuple[dict, str]:
    """Build the trace the CLI asked for; returns (trace, description)."""
    from ..perf.schedule import CapturedSchedule, replay

    if args.schedule:
        schedule = CapturedSchedule.load(args.schedule)
        result = replay(schedule, n_steps=args.steps)
        return (
            chrome_trace(result, label=f"replay of {args.schedule}"),
            f"replayed {args.schedule} × {args.steps} step(s), "
            f"{schedule.world_size} ranks",
        )
    from ..perf.calibrate import measure_plan
    from ..perf.plan import ParallelPlan, Workload
    from .commvol import _default_model

    plan = ParallelPlan(strategy=args.strategy, tp=args.tp, fsdp=args.fsdp, dp=args.dp)
    measured = measure_plan(
        _default_model(),
        Workload(channels=args.channels, batch=args.batch),
        plan,
        eager=not args.blocking,
        n_steps=args.steps,
        keep_world=True,
    )
    return (
        chrome_trace(measured.world, label=plan.label),
        f"{plan.label}, {plan.total_gpus} ranks, "
        f"{'blocking' if args.blocking else 'eager'}, {args.steps} step(s)",
    )


def main(argv: list[str] | None = None) -> int:
    """CLI: render a trace from a plan spec or a saved CapturedSchedule.

    Always validates the rendered trace and exits nonzero on any
    structural problem — ``--smoke`` is the CI entry point (4-rank eager
    tp2×dp2 step to ``--out``, default ``step.trace.json``).
    """
    parser = argparse.ArgumentParser(description="Chrome-trace export")
    parser.add_argument("--strategy", default="dist_tok",
                        choices=("tp", "dist_tok", "dchag"))
    parser.add_argument("--tp", type=int, default=2)
    parser.add_argument("--fsdp", type=int, default=1)
    parser.add_argument("--dp", type=int, default=2)
    parser.add_argument("--channels", type=int, default=16)
    parser.add_argument("--batch", type=int, default=2)
    parser.add_argument("--steps", type=int, default=1)
    parser.add_argument("--blocking", action="store_true",
                        help="blocking replay (default is the eager issue queue)")
    parser.add_argument("--schedule", default=None, metavar="PATH",
                        help="render a saved CapturedSchedule instead of a plan")
    parser.add_argument("--out", default="step.trace.json", metavar="PATH",
                        help="trace JSON output path")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="also persist the trace into this sweep store")
    parser.add_argument("--smoke", action="store_true",
                        help="CI smoke: default 4-rank eager step, validated")
    args = parser.parse_args(argv)

    trace, description = _trace_from_args(args)
    problems = validate_trace(trace)
    out = Path(args.out)
    if out.parent != Path(""):
        out.parent.mkdir(parents=True, exist_ok=True)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
    n_events = len(trace["traceEvents"])
    print(f"{description}: {n_events} events -> {out}")
    if args.store:
        from .store import SweepStore

        with SweepStore(args.store) as store:
            run_id = store.record_run(
                "trace",
                description,
                machine=trace["otherData"].get("machine", ""),
                params={"events": n_events},
            )
            store.record_trace(run_id, out.name, trace)
            print(f"stored as run {run_id} in {args.store}")
    if problems:
        for p in problems:
            print(f"INVALID: {p}", file=sys.stderr)
        return 1
    print("trace valid: open it at https://ui.perfetto.dev or chrome://tracing")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke job
    raise SystemExit(main())
