"""Per-link communication-volume analytics: analytic vs simulated vs measured.

The repo prices every collective three independent ways, and this module
is where the three books are reconciled per ``op × phase × link``:

    =========== ==========================================================
    source      where the numbers come from
    =========== ==========================================================
    analytic    :func:`~repro.perf.comm_model.step_comm_schedule` priced
                through :class:`~repro.perf.cost.CostModel` — pure math,
                no world ever runs
    simulated   the :class:`~repro.perf.clock.VirtualClock`'s archived
                intervals (:meth:`~repro.perf.clock.VirtualClock.comm_volumes`)
                — what the issue-queue engine actually scheduled
    measured    the :class:`~repro.dist.stats.TrafficLog` of a real
                :func:`~repro.dist.run_spmd` world — what the runtime's
                rendezvous actually moved
    =========== ==========================================================

Link class (``intra`` / ``inter``) is derived per source: the clock stamps
each interval from the group's actual world ranks
(:meth:`CostModel.intra_node`), while the analytic and measured books use
the plan's placement rule (:func:`~repro.perf.comm_model.axis_intra_node`)
— the same rank layout, so a disagreement between columns is a real bug,
not a bookkeeping convention.

**Wire bytes must agree exactly** across all three sources (that is the
calibration contract, extended per link class); the seconds columns are
informational — simulated busy seconds equal the analytic α–β cost to
float precision, while measured vseconds (``vend − vstart``) additionally
include time spent waiting for stragglers and are expected to sit above
both on eager runs.

:func:`comm_volume_report` builds the report for one plan (running the
measured replay itself unless handed one), ``report.to_markdown()``
renders the diff table with per-bucket OK/MISMATCH flags, and
``python -m repro.obs.commvol`` is the CI gate: nonzero exit on any
wire-byte disagreement.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field

from ..perf.calibrate import AXIS_PHASES, MeasuredComm, measure_plan
from ..perf.comm_model import axis_group_sizes, axis_intra_node, step_comm_schedule
from ..perf.cost import CostModel
from ..perf.machine import MachineSpec, frontier
from ..perf.modelcfg import ModelConfig
from ..perf.plan import ParallelPlan, Precision, Workload

__all__ = [
    "PHASE_AXES",
    "VolumeBucket",
    "CommVolumeReport",
    "comm_volume_report",
    "main",
]

#: Traffic phase → schedule axis (inverse of :data:`repro.perf.calibrate.AXIS_PHASES`).
PHASE_AXES = {phase: axis for axis, phase in AXIS_PHASES.items()}


@dataclass(frozen=True)
class VolumeBucket:
    """One ``op × phase × link`` reconciliation row (rank 0, whole run).

    Wire bytes are per-rank ring volume; counts are per-rank collective
    records.  ``analytic_seconds`` and ``simulated_seconds`` are pure α–β
    channel occupancy; ``measured_vseconds`` is record wall-time
    (``vend − vstart``), which also pays straggler waits.
    """

    op: str
    phase: str
    link: str                # "intra" | "inter"
    analytic_wire: int = 0
    simulated_wire: int = 0
    measured_wire: int = 0
    analytic_count: int = 0
    simulated_count: int = 0
    measured_count: int = 0
    analytic_seconds: float = 0.0
    simulated_seconds: float = 0.0
    measured_vseconds: float = 0.0

    @property
    def wire_ok(self) -> bool:
        """Exact three-way wire-byte agreement (the gated invariant)."""
        return self.analytic_wire == self.simulated_wire == self.measured_wire

    @property
    def count_ok(self) -> bool:
        return self.analytic_count == self.simulated_count == self.measured_count

    def wire_mismatch(self, tolerance: float = 0.0) -> bool:
        """Whether the wire spread exceeds *tolerance* (relative to the
        analytic figure; ``0.0`` demands exact agreement)."""
        if self.wire_ok:
            return False
        lo = min(self.analytic_wire, self.simulated_wire, self.measured_wire)
        hi = max(self.analytic_wire, self.simulated_wire, self.measured_wire)
        scale = max(abs(self.analytic_wire), 1)
        return (hi - lo) / scale > tolerance

    @property
    def seconds_residual(self) -> float:
        """Relative |simulated − analytic| α–β seconds (float-precision small)."""
        scale = max(abs(self.analytic_seconds), 1e-30)
        return abs(self.simulated_seconds - self.analytic_seconds) / scale


@dataclass(frozen=True)
class CommVolumeReport:
    """The reconciled per-link volume report of one plan's replay."""

    plan: ParallelPlan
    machine: str
    world_size: int
    eager: bool
    n_steps: int
    buckets: tuple[VolumeBucket, ...] = field(default_factory=tuple)

    @property
    def wire_exact(self) -> bool:
        return all(b.wire_ok for b in self.buckets)

    @property
    def max_seconds_residual(self) -> float:
        return max((b.seconds_residual for b in self.buckets), default=0.0)

    def mismatches(self, tolerance: float = 0.0) -> list[VolumeBucket]:
        """Buckets whose wire spread exceeds *tolerance* (flagged rows)."""
        return [b for b in self.buckets if b.wire_mismatch(tolerance)]

    def total_wire(self, source: str = "measured") -> int:
        return sum(getattr(b, f"{source}_wire") for b in self.buckets)

    def to_markdown(self, tolerance: float = 0.0) -> str:
        """The diff table: one row per bucket, flagged OK / **MISMATCH**."""
        mode = "eager" if self.eager else "blocking"
        lines = [
            f"Comm volume — {self.plan.label} on {self.machine}, "
            f"{self.world_size} ranks, {mode}, {self.n_steps} step(s), rank 0",
            "",
            "| op | phase | link | n | wire analytic | wire simulated | "
            "wire measured | αβ s | sim busy s | meas vsec | status |",
            "|---|---|---|---:|---:|---:|---:|---:|---:|---:|---|",
        ]
        for b in self.buckets:
            status = "OK" if not b.wire_mismatch(tolerance) else "**MISMATCH**"
            if not b.count_ok:
                status = "**MISMATCH**"
            counts = (
                str(b.analytic_count)
                if b.count_ok
                else f"{b.analytic_count}/{b.simulated_count}/{b.measured_count}"
            )
            lines.append(
                f"| {b.op} | {b.phase} | {b.link} | {counts} "
                f"| {b.analytic_wire:,} | {b.simulated_wire:,} "
                f"| {b.measured_wire:,} | {b.analytic_seconds:.3e} "
                f"| {b.simulated_seconds:.3e} | {b.measured_vseconds:.3e} "
                f"| {status} |"
            )
        flagged = self.mismatches(tolerance) or [
            b for b in self.buckets if not b.count_ok
        ]
        verdict = (
            "all wire bytes agree analytic = simulated = measured"
            if not flagged
            else f"{len(flagged)} bucket(s) disagree beyond tolerance {tolerance}"
        )
        lines += ["", f"**{verdict}**"]
        return "\n".join(lines)


def comm_volume_report(
    model: ModelConfig,
    workload: Workload,
    plan: ParallelPlan,
    machine: MachineSpec | None = None,
    precision: Precision = Precision(),
    eager: bool = True,
    n_steps: int = 1,
    measured: MeasuredComm | None = None,
    rank: int = 0,
) -> CommVolumeReport:
    """Reconcile one plan's comm volume across all three books.

    Runs the measured replay itself (``measure_plan(..., keep_world=True)``)
    unless handed a *measured* result — which must have been produced with
    ``keep_world=True``, as both the simulated column (clock intervals) and
    the measured column (traffic log) are read off the retained world.

    Buckets cover the union of keys any source reports, with absent
    sources at zero — traffic in only one book is itself a flagged
    mismatch, not an accounting gap.
    """
    machine = machine if machine is not None else frontier()
    if measured is None:
        measured = measure_plan(
            model, workload, plan, machine, precision,
            eager=eager, n_steps=n_steps, keep_world=True,
        )
    world = measured.world
    if world is None:
        raise ValueError(
            "comm_volume_report needs the replay's world: produce the "
            "MeasuredComm with measure_plan(..., keep_world=True)"
        )
    cost = CostModel(machine)
    sizes = axis_group_sizes(plan)
    intra = axis_intra_node(plan, machine)
    steps = measured.n_steps

    # -- analytic: the schedule priced event by event, scaled to the run --
    analytic: dict[tuple[str, str, str], list] = {}
    for ev in step_comm_schedule(model, workload, plan, precision):
        n = sizes[ev.axis]
        if n <= 1:
            continue
        phase = AXIS_PHASES[ev.axis]
        link = "intra" if intra[ev.axis] else "inter"
        row = analytic.setdefault((ev.op, phase, link), [0, 0, 0.0])
        count = ev.count * steps
        row[0] += count
        row[1] += count * cost.wire_bytes(ev.op, ev.payload_bytes, n)
        row[2] += count * cost.collective_seconds(
            ev.op, ev.payload_bytes, n, intra[ev.axis]
        )

    # -- simulated: the clock's archived intervals (O(buckets) read) ------
    simulated = {
        (op, phase, "intra" if is_intra else "inter"): vals
        for (op, phase, is_intra), vals in world.clock.comm_volumes(rank=rank).items()
    }

    # -- measured: the traffic log, link-classed by the plan's placement --
    measured_keys = set()
    for r in world.traffic.records_by_rank(rank):
        axis = PHASE_AXES.get(r.phase)
        if axis is None:
            continue  # not a schedule phase (e.g. a barrier outside the step)
        link = "intra" if intra[axis] else "inter"
        measured_keys.add((r.op, r.phase, link))
    measured_vals = {}
    for op, phase, link in measured_keys:
        tot = world.traffic.totals(op=op, phase=phase, rank=rank)
        measured_vals[(op, phase, link)] = (tot.count, tot.wire_bytes, tot.vseconds)

    buckets = []
    for key in sorted({*analytic, *simulated, *measured_vals}):
        op, phase, link = key
        a_cnt, a_wire, a_sec = analytic.get(key, (0, 0, 0.0))
        s_cnt, s_wire, s_sec = simulated.get(key, (0, 0, 0.0))
        m_cnt, m_wire, m_sec = measured_vals.get(key, (0, 0, 0.0))
        buckets.append(
            VolumeBucket(
                op=op, phase=phase, link=link,
                analytic_wire=a_wire, simulated_wire=s_wire, measured_wire=m_wire,
                analytic_count=a_cnt, simulated_count=s_cnt, measured_count=m_cnt,
                analytic_seconds=a_sec, simulated_seconds=s_sec,
                measured_vseconds=m_sec,
            )
        )
    return CommVolumeReport(
        plan=plan,
        machine=machine.name,
        world_size=measured.world_size,
        eager=measured.eager,
        n_steps=steps,
        buckets=tuple(buckets),
    )


def _default_model() -> ModelConfig:
    """The small standard world the observability CLIs replay."""
    return ModelConfig("obs-demo", dim=64, depth=2, heads=4, patch=4, image_hw=(16, 16))


def main(argv: list[str] | None = None) -> int:
    """CLI: render the per-link diff table, gate on wire-byte agreement.

    Exits nonzero whenever any ``op × phase × link`` bucket's wire bytes
    disagree between the analytic schedule, the simulated clock and the
    measured traffic log beyond ``--tolerance`` (default: exact).
    """
    parser = argparse.ArgumentParser(description="per-link comm-volume diff")
    parser.add_argument("--strategy", default="dist_tok",
                        choices=("tp", "dist_tok", "dchag"))
    parser.add_argument("--tp", type=int, default=2)
    parser.add_argument("--sp", type=int, default=1,
                        help="sequence-parallel degree (Ulysses sp_a2a phases)")
    parser.add_argument("--fsdp", type=int, default=1)
    parser.add_argument("--dp", type=int, default=2)
    parser.add_argument("--channels", type=int, default=16)
    parser.add_argument("--batch", type=int, default=2)
    parser.add_argument("--steps", type=int, default=1)
    parser.add_argument("--blocking", action="store_true",
                        help="blocking replay (default is the eager issue queue)")
    parser.add_argument("--tolerance", type=float, default=0.0,
                        help="relative wire-byte tolerance (default 0 — exact)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="persist the report into this sweep store")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the markdown table to PATH")
    args = parser.parse_args(argv)

    plan = ParallelPlan(
        strategy=args.strategy, tp=args.tp, sp=args.sp, fsdp=args.fsdp, dp=args.dp
    )
    report = comm_volume_report(
        _default_model(),
        Workload(channels=args.channels, batch=args.batch),
        plan,
        eager=not args.blocking,
        n_steps=args.steps,
    )
    table = report.to_markdown(args.tolerance)
    print(table)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(table + "\n")
    if args.store:
        from .store import SweepStore

        with SweepStore(args.store) as store:
            run_id = store.record_run(
                "commvol", plan.label, machine=report.machine,
                params={
                    "eager": report.eager, "n_steps": report.n_steps,
                    "world_size": report.world_size,
                    "channels": args.channels, "batch": args.batch,
                },
            )
            store.record_volume_report(run_id, report)
            print(f"stored as run {run_id} in {args.store}")
    if report.mismatches(args.tolerance) or not all(b.count_ok for b in report.buckets):
        print("FAIL: wire-byte books disagree", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by the CI smoke job
    raise SystemExit(main())
