"""Queryable sweep store: every benchmark and calibration run as an artifact.

Sweep results used to live in printed tables and ad-hoc JSON; this module
gives them a durable, queryable home — a stdlib-``sqlite3`` database the
measurement entry points write into (``search_configurations(...,
store=)``, ``measure_plan(..., store=)``, ``calibrate(..., store=)``, the
``repro.obs`` CLIs, and ``benchmarks/bench_runtime_speed.py --store``) and
drivers query back out with :meth:`SweepStore.top_plans`,
:meth:`SweepStore.volume_by_link` and :meth:`SweepStore.run_history`.

Schema (version 3, ``PRAGMA user_version``; older stores are migrated in
place — version 1 gains the ``plans.sp`` column with a default of 1,
version 2 gains the ``fleet_runs`` table):

    =============  =====================================================
    table          one row per
    =============  =====================================================
    ``runs``       recorded run — ``(kind, name)`` unique, so re-recording
                   a run **upserts**: the row is refreshed and its child
                   rows replaced (idempotent re-runs, no duplicate sweeps)
    ``plans``      ranked candidate of a configuration search (position,
                   axes, micro-batch, score, the overlap pair that ranked
                   it)
    ``metrics``    scalar measurement — optionally keyed by
                   ``op × phase × link × source`` for comm-volume buckets
    ``traces``     JSON artifact (a Chrome trace, a captured schedule)
    ``fleet_runs`` policy evaluated by the elastic fleet simulator
                   (goodput, lost-work split, restore counts per policy)
    =============  =====================================================

The database runs in WAL mode (readers never block a writer appending a
sweep), enforces foreign keys, and every write path is an idempotent
upsert keyed on the natural key of its table.
"""

from __future__ import annotations

import json
import sqlite3
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..perf.autotune import TunedPlan

__all__ = ["SCHEMA_VERSION", "RunRow", "StoredPlan", "FleetRunRow", "SweepStore"]

SCHEMA_VERSION = 3

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    id          INTEGER PRIMARY KEY,
    kind        TEXT NOT NULL,
    name        TEXT NOT NULL,
    machine     TEXT NOT NULL DEFAULT '',
    host        TEXT NOT NULL DEFAULT '',
    created_at  REAL NOT NULL,
    params_json TEXT NOT NULL DEFAULT '{}',
    UNIQUE (kind, name)
);
CREATE TABLE IF NOT EXISTS plans (
    id             INTEGER PRIMARY KEY,
    run_id         INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    position       INTEGER NOT NULL,
    label          TEXT NOT NULL,
    strategy       TEXT NOT NULL,
    tp             INTEGER NOT NULL,
    sp             INTEGER NOT NULL DEFAULT 1,
    fsdp           INTEGER NOT NULL,
    dp             INTEGER NOT NULL,
    micro_batch    INTEGER NOT NULL,
    total_tflops   REAL NOT NULL,
    dp_overlap     REAL,
    fsdp_overlap   REAL,
    overlap_source TEXT NOT NULL DEFAULT '',
    UNIQUE (run_id, label)
);
CREATE INDEX IF NOT EXISTS idx_plans_run ON plans (run_id, position);
CREATE TABLE IF NOT EXISTS metrics (
    id           INTEGER PRIMARY KEY,
    run_id       INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    name         TEXT NOT NULL,
    value        REAL NOT NULL,
    unit         TEXT NOT NULL DEFAULT '',
    op           TEXT NOT NULL DEFAULT '',
    phase        TEXT NOT NULL DEFAULT '',
    link         TEXT NOT NULL DEFAULT '',
    source       TEXT NOT NULL DEFAULT '',
    context_json TEXT NOT NULL DEFAULT '{}',
    UNIQUE (run_id, name, op, phase, link, source)
);
CREATE INDEX IF NOT EXISTS idx_metrics_run ON metrics (run_id, name);
CREATE TABLE IF NOT EXISTS traces (
    id           INTEGER PRIMARY KEY,
    run_id       INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    name         TEXT NOT NULL,
    kind         TEXT NOT NULL DEFAULT 'chrome-trace',
    payload_json TEXT NOT NULL,
    UNIQUE (run_id, name)
);
CREATE TABLE IF NOT EXISTS fleet_runs (
    id                 INTEGER PRIMARY KEY,
    run_id             INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    policy             TEXT NOT NULL,
    position           INTEGER NOT NULL,
    horizon_steps      INTEGER NOT NULL,
    wall_seconds       REAL NOT NULL,
    productive_seconds REAL NOT NULL,
    recompute_seconds  REAL NOT NULL,
    save_seconds       REAL NOT NULL,
    restore_seconds    REAL NOT NULL,
    reshard_seconds    REAL NOT NULL,
    goodput            REAL NOT NULL,
    restores           INTEGER NOT NULL,
    saves              INTEGER NOT NULL,
    final_world        INTEGER NOT NULL,
    status             TEXT NOT NULL DEFAULT 'completed',
    UNIQUE (run_id, policy)
);
CREATE INDEX IF NOT EXISTS idx_fleet_run ON fleet_runs (run_id, position);
"""


@dataclass(frozen=True)
class RunRow:
    """One recorded run (a search, a measure, a calibration, a bench)."""

    id: int
    kind: str
    name: str
    machine: str
    host: str
    created_at: float
    params: dict

    @property
    def summary(self) -> str:
        return f"[{self.kind}] {self.name} on {self.machine or '?'} (run {self.id})"


@dataclass(frozen=True)
class FleetRunRow:
    """One policy's simulated outcome in a persisted fleet comparison."""

    run_id: int
    policy: str
    position: int
    horizon_steps: int
    wall_seconds: float
    productive_seconds: float
    recompute_seconds: float
    save_seconds: float
    restore_seconds: float
    reshard_seconds: float
    goodput: float
    restores: int
    saves: int
    final_world: int
    status: str


@dataclass(frozen=True)
class StoredPlan:
    """One ranked candidate of a persisted configuration search."""

    run_id: int
    position: int
    label: str
    strategy: str
    tp: int
    sp: int
    fsdp: int
    dp: int
    micro_batch: int
    total_tflops: float
    dp_overlap: float | None
    fsdp_overlap: float | None
    overlap_source: str


class SweepStore:
    """One sqlite sweep database (created on first open, WAL, versioned).

    Usable as a context manager; pass a filesystem path or ``":memory:"``.
    All writes commit immediately — a store handle can be held across a
    whole sweep and every recorded run is durable the moment the recording
    call returns.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self.path = str(path)
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self._db = sqlite3.connect(self.path)
        self._db.row_factory = sqlite3.Row
        self._db.execute("PRAGMA journal_mode=WAL")
        self._db.execute("PRAGMA foreign_keys=ON")
        version = self._db.execute("PRAGMA user_version").fetchone()[0]
        if version not in (0, 1, 2, SCHEMA_VERSION):
            raise ValueError(
                f"sweep store {self.path} has schema version {version}; "
                f"this build reads version {SCHEMA_VERSION}"
            )
        with self._db:
            if version == 1:
                # v1 -> v2: plans gained a sequence-parallel degree column.
                self._db.execute(
                    "ALTER TABLE plans ADD COLUMN sp INTEGER NOT NULL DEFAULT 1"
                )
            # v2 -> v3 adds only the fleet_runs table, which the idempotent
            # schema script below creates.
            self._db.executescript(_SCHEMA)
            self._db.execute(f"PRAGMA user_version={SCHEMA_VERSION}")

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        self._db.close()

    def __enter__(self) -> "SweepStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- writers -----------------------------------------------------------
    def record_run(
        self,
        kind: str,
        name: str,
        machine: str = "",
        host: str = "",
        params: dict | None = None,
        fresh: bool = True,
    ) -> int:
        """Upsert one run row and return its id.

        ``(kind, name)`` is the natural key: recording the same run again
        refreshes the row in place and — with ``fresh=True`` (default) —
        drops its previous child rows, so re-running a sweep replaces its
        data instead of accumulating duplicates.
        """
        payload = json.dumps(params or {}, sort_keys=True)
        with self._db:
            cur = self._db.execute(
                """
                INSERT INTO runs (kind, name, machine, host, created_at, params_json)
                VALUES (?, ?, ?, ?, ?, ?)
                ON CONFLICT (kind, name) DO UPDATE SET
                    machine=excluded.machine, host=excluded.host,
                    created_at=excluded.created_at, params_json=excluded.params_json
                """,
                (kind, name, machine, host, time.time(), payload),
            )
            run_id = cur.lastrowid
            if not run_id:  # upsert path: fetch the surviving row id
                run_id = self._db.execute(
                    "SELECT id FROM runs WHERE kind=? AND name=?", (kind, name)
                ).fetchone()[0]
            if fresh:
                for table in ("plans", "metrics", "traces", "fleet_runs"):
                    self._db.execute(f"DELETE FROM {table} WHERE run_id=?", (run_id,))
        return int(run_id)

    def record_plans(self, run_id: int, tuned: Sequence["TunedPlan"]) -> None:
        """Persist a ranked candidate list (best first, as the search returns)."""
        rows = []
        for position, t in enumerate(tuned):
            ov = t.overlaps
            rows.append(
                (
                    run_id, position, t.plan.label, t.plan.strategy,
                    t.plan.tp, t.plan.sp, t.plan.fsdp, t.plan.dp,
                    t.micro_batch, t.total_tflops,
                    None if ov is None else ov.dp_overlap,
                    None if ov is None else ov.fsdp_overlap,
                    "" if ov is None else ov.dp.source,
                )
            )
        with self._db:
            self._db.executemany(
                """
                INSERT INTO plans (run_id, position, label, strategy, tp, sp,
                                   fsdp, dp, micro_batch, total_tflops,
                                   dp_overlap, fsdp_overlap, overlap_source)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                ON CONFLICT (run_id, label) DO UPDATE SET
                    position=excluded.position, strategy=excluded.strategy,
                    tp=excluded.tp, sp=excluded.sp,
                    fsdp=excluded.fsdp, dp=excluded.dp,
                    micro_batch=excluded.micro_batch,
                    total_tflops=excluded.total_tflops,
                    dp_overlap=excluded.dp_overlap,
                    fsdp_overlap=excluded.fsdp_overlap,
                    overlap_source=excluded.overlap_source
                """,
                rows,
            )

    def record_metric(
        self,
        run_id: int,
        name: str,
        value: float,
        unit: str = "",
        op: str = "",
        phase: str = "",
        link: str = "",
        source: str = "",
        context: dict | None = None,
    ) -> None:
        """Upsert one scalar, keyed by ``(run, name, op, phase, link, source)``."""
        with self._db:
            self._db.execute(
                """
                INSERT INTO metrics (run_id, name, value, unit, op, phase,
                                     link, source, context_json)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)
                ON CONFLICT (run_id, name, op, phase, link, source)
                DO UPDATE SET value=excluded.value, unit=excluded.unit,
                              context_json=excluded.context_json
                """,
                (
                    run_id, name, float(value), unit, op, phase, link, source,
                    json.dumps(context or {}, sort_keys=True),
                ),
            )

    def record_volume_report(self, run_id: int, report) -> None:
        """Persist a :class:`repro.obs.commvol.CommVolumeReport`.

        One ``wire_bytes`` and one ``seconds`` metric per bucket × source,
        queryable back out with :meth:`volume_by_link`.
        """
        for b in report.buckets:
            for source, wire, seconds in (
                ("analytic", b.analytic_wire, b.analytic_seconds),
                ("simulated", b.simulated_wire, b.simulated_seconds),
                ("measured", b.measured_wire, b.measured_vseconds),
            ):
                self.record_metric(
                    run_id, "wire_bytes", wire, unit="B",
                    op=b.op, phase=b.phase, link=b.link, source=source,
                )
                self.record_metric(
                    run_id, "seconds", seconds, unit="s",
                    op=b.op, phase=b.phase, link=b.link, source=source,
                )

    def record_fleet_results(self, run_id: int, results: Sequence) -> None:
        """Persist a fleet-simulator policy comparison (best goodput first).

        *results* are :class:`repro.elastic.fleet.FleetRunResult`-shaped
        objects (duck-typed, so :mod:`repro.obs` never imports
        :mod:`repro.elastic`); position records the ranking the simulator
        produced.
        """
        rows = [
            (
                run_id, r.policy, position, r.horizon_steps,
                r.wall_seconds, r.productive_seconds, r.recompute_seconds,
                r.save_seconds, r.restore_seconds, r.reshard_seconds,
                r.goodput, r.restores, r.saves, r.final_world, r.status,
            )
            for position, r in enumerate(results)
        ]
        with self._db:
            self._db.executemany(
                """
                INSERT INTO fleet_runs (run_id, policy, position, horizon_steps,
                                        wall_seconds, productive_seconds,
                                        recompute_seconds, save_seconds,
                                        restore_seconds, reshard_seconds,
                                        goodput, restores, saves, final_world,
                                        status)
                VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
                ON CONFLICT (run_id, policy) DO UPDATE SET
                    position=excluded.position,
                    horizon_steps=excluded.horizon_steps,
                    wall_seconds=excluded.wall_seconds,
                    productive_seconds=excluded.productive_seconds,
                    recompute_seconds=excluded.recompute_seconds,
                    save_seconds=excluded.save_seconds,
                    restore_seconds=excluded.restore_seconds,
                    reshard_seconds=excluded.reshard_seconds,
                    goodput=excluded.goodput, restores=excluded.restores,
                    saves=excluded.saves, final_world=excluded.final_world,
                    status=excluded.status
                """,
                rows,
            )

    def record_trace(
        self, run_id: int, name: str, payload: dict, kind: str = "chrome-trace"
    ) -> None:
        """Upsert one JSON artifact (a Chrome trace, a captured schedule)."""
        with self._db:
            self._db.execute(
                """
                INSERT INTO traces (run_id, name, kind, payload_json)
                VALUES (?, ?, ?, ?)
                ON CONFLICT (run_id, name) DO UPDATE SET
                    kind=excluded.kind, payload_json=excluded.payload_json
                """,
                (run_id, name, kind, json.dumps(payload, sort_keys=True)),
            )

    # -- queries -----------------------------------------------------------
    def _run_row(self, row) -> RunRow:
        return RunRow(
            id=row["id"], kind=row["kind"], name=row["name"],
            machine=row["machine"], host=row["host"],
            created_at=row["created_at"], params=json.loads(row["params_json"]),
        )

    def run_history(
        self, kind: str | None = None, name: str | None = None, limit: int = 50
    ) -> list[RunRow]:
        """Recorded runs, newest first, optionally filtered by kind/name."""
        clauses, args = [], []
        if kind is not None:
            clauses.append("kind=?")
            args.append(kind)
        if name is not None:
            clauses.append("name=?")
            args.append(name)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._db.execute(
            f"SELECT * FROM runs {where} ORDER BY created_at DESC, id DESC LIMIT ?",
            (*args, int(limit)),
        ).fetchall()
        return [self._run_row(r) for r in rows]

    def latest_run(self, kind: str | None = None) -> RunRow | None:
        history = self.run_history(kind=kind, limit=1)
        return history[0] if history else None

    def top_plans(self, run_id: int | None = None, limit: int = 10) -> list[StoredPlan]:
        """The best candidates of one search run, best throughput first.

        ``run_id=None`` reads the newest ``search`` run.  Ordering is by the
        persisted score (ties by recorded position, so a re-query reproduces
        the search's own ranking exactly — the golden-podium contract).
        """
        if run_id is None:
            latest = self.latest_run(kind="search")
            if latest is None:
                return []
            run_id = latest.id
        rows = self._db.execute(
            """
            SELECT * FROM plans WHERE run_id=?
            ORDER BY total_tflops DESC, position ASC LIMIT ?
            """,
            (int(run_id), int(limit)),
        ).fetchall()
        return [
            StoredPlan(
                run_id=r["run_id"], position=r["position"], label=r["label"],
                strategy=r["strategy"], tp=r["tp"], sp=r["sp"],
                fsdp=r["fsdp"], dp=r["dp"],
                micro_batch=r["micro_batch"], total_tflops=r["total_tflops"],
                dp_overlap=r["dp_overlap"], fsdp_overlap=r["fsdp_overlap"],
                overlap_source=r["overlap_source"],
            )
            for r in rows
        ]

    def fleet_ranking(self, run_id: int | None = None) -> list[FleetRunRow]:
        """One fleet comparison's policies, best goodput first.

        ``run_id=None`` reads the newest ``fleet`` run.  Ordering is by
        persisted goodput (ties by recorded position), so re-querying
        reproduces the simulator's own deterministic ranking.
        """
        if run_id is None:
            latest = self.latest_run(kind="fleet")
            if latest is None:
                return []
            run_id = latest.id
        rows = self._db.execute(
            """
            SELECT * FROM fleet_runs WHERE run_id=?
            ORDER BY goodput DESC, position ASC
            """,
            (int(run_id),),
        ).fetchall()
        return [
            FleetRunRow(
                run_id=r["run_id"], policy=r["policy"], position=r["position"],
                horizon_steps=r["horizon_steps"],
                wall_seconds=r["wall_seconds"],
                productive_seconds=r["productive_seconds"],
                recompute_seconds=r["recompute_seconds"],
                save_seconds=r["save_seconds"],
                restore_seconds=r["restore_seconds"],
                reshard_seconds=r["reshard_seconds"],
                goodput=r["goodput"], restores=r["restores"], saves=r["saves"],
                final_world=r["final_world"], status=r["status"],
            )
            for r in rows
        ]

    def volume_by_link(
        self,
        run_id: int,
        name: str = "wire_bytes",
        source: str = "measured",
    ) -> dict[tuple[str, str, str], float]:
        """Comm-volume buckets of one run: ``(op, phase, link) -> value``."""
        rows = self._db.execute(
            """
            SELECT op, phase, link, value FROM metrics
            WHERE run_id=? AND name=? AND source=? AND link != ''
            ORDER BY op, phase, link
            """,
            (int(run_id), name, source),
        ).fetchall()
        return {(r["op"], r["phase"], r["link"]): r["value"] for r in rows}

    def metrics_for(self, run_id: int) -> dict[str, float]:
        """Every unbucketed scalar of one run (``name -> value``)."""
        rows = self._db.execute(
            "SELECT name, value FROM metrics WHERE run_id=? AND link='' ORDER BY name",
            (int(run_id),),
        ).fetchall()
        return {r["name"]: r["value"] for r in rows}

    def get_trace(self, run_id: int, name: str) -> dict | None:
        row = self._db.execute(
            "SELECT payload_json FROM traces WHERE run_id=? AND name=?",
            (int(run_id), name),
        ).fetchone()
        return None if row is None else json.loads(row["payload_json"])

    def trace_names(self, run_id: int) -> list[str]:
        rows = self._db.execute(
            "SELECT name FROM traces WHERE run_id=? ORDER BY name", (int(run_id),)
        ).fetchall()
        return [r["name"] for r in rows]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        runs = self._db.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
        return f"SweepStore({self.path!r}, runs={runs})"


def open_store(store: "SweepStore | str | Path | None") -> "SweepStore | None":
    """Coerce a store argument: pass handles through, open paths, keep None."""
    if store is None or isinstance(store, SweepStore):
        return store
    return SweepStore(store)
