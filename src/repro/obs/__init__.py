"""Timeline observability for the simulated runtime.

Three pillars over the perf stack's books:

* :mod:`repro.obs.trace` — lower virtual-clock timelines (live worlds,
  measured replays, captured-schedule replays) to Chrome Trace Event
  JSON viewable in Perfetto / ``chrome://tracing``;
* :mod:`repro.obs.commvol` — reconcile communication volume per
  ``op × phase × link`` across the analytic schedule, the simulated
  clock and the measured traffic log, gating exact wire-byte agreement;
* :mod:`repro.obs.store` — a stdlib-sqlite sweep store the search,
  measurement and benchmark entry points persist runs into, with query
  helpers (``top_plans``, ``volume_by_link``, ``run_history``).

Submodule attributes resolve lazily (PEP 562) so ``python -m
repro.obs.trace`` runs without the package import pre-loading the very
module runpy is about to execute.
"""

from importlib import import_module

__all__ = [
    "CommVolumeReport",
    "VolumeBucket",
    "comm_volume_report",
    "SweepStore",
    "RunRow",
    "StoredPlan",
    "FleetRunRow",
    "open_store",
    "chrome_trace",
    "export_trace",
    "validate_trace",
]

_EXPORTS = {
    "CommVolumeReport": "commvol",
    "VolumeBucket": "commvol",
    "comm_volume_report": "commvol",
    "SweepStore": "store",
    "RunRow": "store",
    "StoredPlan": "store",
    "FleetRunRow": "store",
    "open_store": "store",
    "chrome_trace": "trace",
    "export_trace": "trace",
    "validate_trace": "trace",
}


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(import_module(f".{module}", __name__), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
