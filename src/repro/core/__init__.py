"""The paper's core contribution: Distributed Cross-Channel Hierarchical
Aggregation (D-CHAG)."""

from .config import DCHAGConfig
from .dchag import DCHAG
from .partial_agg import PartialChannelAggregator
from .planner import PlanChoice, plan_channel_stage, sweep_tree_configs
from .tree import TreeSpec, build_tree

__all__ = [
    "DCHAG",
    "DCHAGConfig",
    "PartialChannelAggregator",
    "TreeSpec",
    "build_tree",
    "PlanChoice",
    "plan_channel_stage",
    "sweep_tree_configs",
]
