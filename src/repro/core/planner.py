"""D-CHAG configuration planner.

Answers the practical question §3.3 raises — "the partial-channel
aggregation modules offer several tunable parameters" — by sweeping tree
fanout and layer kind with the analytic models and returning the best plan
by estimated sustained throughput (falling back to lowest memory when
nothing is throughput-feasible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

# NOTE: repro.perf imports repro.core.tree, so the perf imports here are
# deferred to call time to keep the package import graph acyclic.
if TYPE_CHECKING:  # pragma: no cover
    from ..perf.machine import MachineSpec
    from ..perf.modelcfg import ModelConfig
    from ..perf.plan import ParallelPlan, Precision, Workload
    from ..perf.throughput import StepEstimate

__all__ = ["PlanChoice", "plan_channel_stage", "sweep_tree_configs"]


@dataclass(frozen=True)
class PlanChoice:
    plan: "ParallelPlan"
    estimate: "StepEstimate"

    @property
    def summary(self) -> str:
        mem_gb = self.estimate.memory.total / 1024**3
        return (
            f"{self.plan.label}: {self.estimate.tflops_per_gpu:.1f} TF/s/GPU, "
            f"{mem_gb:.1f} GB/GPU"
        )


def sweep_tree_configs(
    model: "ModelConfig",
    workload: "Workload",
    machine: "MachineSpec",
    tp: int,
    fanouts: tuple[int, ...] = (0, 2, 4, 8),
    kinds: tuple[str, ...] = ("linear", "cross"),
    fsdp: int = 1,
    dp: int = 1,
    precision: "Precision | None" = None,
) -> list[PlanChoice]:
    """Estimate every (fanout, kind) D-CHAG variant at fixed tp/fsdp/dp."""
    from ..perf.plan import ParallelPlan, Precision
    from ..perf.throughput import sustained_estimate

    precision = precision if precision is not None else Precision()
    local_c = -(-workload.channels // tp)
    out: list[PlanChoice] = []
    for kind in kinds:
        for fanout in fanouts:
            if max(1, fanout) > local_c:
                continue  # tree wider than the local channel count
            plan = ParallelPlan(
                "dchag", tp=tp, fsdp=fsdp, dp=dp, dchag_kind=kind, dchag_fanout=fanout
            )
            out.append(
                PlanChoice(
                    plan,
                    sustained_estimate(
                        model, workload.channels, plan, machine, precision
                    ),
                )
            )
    return out


def plan_channel_stage(
    model: "ModelConfig",
    workload: "Workload",
    machine: "MachineSpec",
    tp: int,
    fsdp: int = 1,
    dp: int = 1,
    precision: "Precision | None" = None,
) -> PlanChoice:
    """Pick the best D-CHAG variant for this model/workload/GPU layout.

    Selection: highest estimated TFLOPs/GPU among configurations that fit;
    if none fit, the one with the smallest memory footprint (so callers can
    report how far over budget the best attempt is).
    """
    choices = sweep_tree_configs(
        model, workload, machine, tp, fsdp=fsdp, dp=dp, precision=precision
    )
    if not choices:
        raise ValueError("no feasible tree configuration (tp exceeds channels?)")
    fitting = [c for c in choices if c.estimate.fits]
    if fitting:
        return max(fitting, key=lambda c: c.estimate.tflops_per_gpu)
    return min(choices, key=lambda c: c.estimate.memory.total)
