"""The D-CHAG module (paper §3.3, Fig. 4): distributed tokenization + local
hierarchical aggregation + forward-only AllGather + shared final
cross-attention.

Data flow on each TP/D-CHAG rank::

    images [B, C, H, W]
      → tokenize OWN channel shard           [B, C/tp, N, D]   (rank-local weights)
      → + channel-ID embeddings (shard of the master table)
      → partial-channel aggregation tree     [B, 1, N, D]      (rank-local weights)
      → AllGather (forward only)             [B, tp, N, D]     (replicated)
      → final cross-attention (shared)       [B, N, D]         (replicated or TP-sharded)

Communication: exactly one AllGather of **one channel per rank** in the
forward pass; the backward of that gather slices the local gradient — zero
backward collectives.  This requires the final layer (and everything after
it) to be replicated across the group, which holds because its parameters
are initialised identically on every rank and receive bitwise-identical
gradients (deterministic reductions in :mod:`repro.dist`); asserted by
``tests/test_dchag_sync.py``.
"""

from __future__ import annotations

import numpy as np

from ..dist import Communicator, ProcessGroup, all_gather_forward_only
from ..nn import ChannelCrossAttention, ChannelIDEmbedding, Module, PatchTokenizer
from ..parallel.dist_token import channel_shard
from ..parallel.tp import TPChannelCrossAttention, TPContext
from ..tensor import Tensor
from .config import DCHAGConfig
from .partial_agg import PartialChannelAggregator

__all__ = ["DCHAG"]


class DCHAG(Module):
    """Distributed Cross-Channel Hierarchical Aggregation.

    Replaces the serial ``PatchTokenizer → ChannelCrossAttention`` front-end
    of a ChannelViT with the distributed scheme above.  Construct SPMD-style
    on every rank of the TP group.

    Parameters
    ----------
    comm, group:
        The rank's communicator and its TP/D-CHAG process group (identical
        groups by design, §3.4).
    config:
        :class:`~repro.core.config.DCHAGConfig`.
    rng_seed:
        Base seed; rank-local modules (tokenizer shard init when no master is
        given, partial aggregators) draw from ``seed + 1000 * rank`` while
        shared modules (final cross-attention) draw from ``seed`` so they are
        identical on every rank.
    master_tok_weight / master_tok_bias / master_channel_ids:
        Optional master arrays (``[C, p², D]`` / ``[C, D]`` / ``[C, D]``) to
        slice shards from — used by equivalence tests and by checkpoints.
    """

    def __init__(
        self,
        comm: Communicator,
        group: ProcessGroup | None,
        config: DCHAGConfig,
        rng_seed: int = 0,
        master_tok_weight: np.ndarray | None = None,
        master_tok_bias: np.ndarray | None = None,
        master_channel_ids: np.ndarray | None = None,
    ) -> None:
        super().__init__()
        group = group if group is not None else comm.world.default_group
        self.comm = comm
        self.group = group
        self.config = config
        c, p, d, h = config.channels, config.patch, config.dim, config.heads

        self.shard = channel_shard(c, group, comm.rank)
        local_c = self.shard.stop - self.shard.start
        self.local_channels = local_c

        rank_rng = np.random.default_rng(rng_seed + 1000 * group.rank_index(comm.rank))
        shared_rng = np.random.default_rng(rng_seed)

        if master_tok_weight is not None:
            self.tokenizer = PatchTokenizer(
                local_c,
                p,
                d,
                weight=np.ascontiguousarray(master_tok_weight[self.shard]),
                bias_value=(
                    np.ascontiguousarray(master_tok_bias[self.shard])
                    if master_tok_bias is not None
                    else None
                ),
            )
        else:
            self.tokenizer = PatchTokenizer(local_c, p, d, rank_rng)

        if master_channel_ids is not None:
            self.channel_ids = ChannelIDEmbedding(
                local_c, d, table=np.ascontiguousarray(master_channel_ids[self.shard])
            )
        else:
            self.channel_ids = ChannelIDEmbedding(local_c, d, rank_rng)

        self.partial = PartialChannelAggregator(
            local_c, d, h, rank_rng, fanout=config.fanout, kind=config.kind
        )

        # Final shared cross-attention: identical init on every rank.
        final_serial = ChannelCrossAttention(d, h, shared_rng, num_queries=1)
        if config.tp_shard_final and group.size > 1:
            ctx = TPContext(comm, group)
            self.final = TPChannelCrossAttention(
                ctx,
                d,
                h,
                master_query_tokens=final_serial.query_tokens.data,
                master_q_w=final_serial.q_proj.weight.data,
                master_q_b=final_serial.q_proj.bias.data,
                master_kv_w=final_serial.kv_proj.weight.data,
                master_kv_b=final_serial.kv_proj.bias.data,
                master_proj_w=final_serial.proj.weight.data,
                master_proj_b=final_serial.proj.bias.data,
            )
        else:
            self.final = final_serial

    # ------------------------------------------------------------------
    def local_tokens(self, images: np.ndarray) -> Tensor:
        """Tokenize this rank's channel shard: ``[B, C/tp, N, D]``."""
        local = images[:, self.shard]
        tokens = self.tokenizer(local)
        return self.channel_ids(tokens)

    def forward(self, images: np.ndarray) -> Tensor:
        """``[B, C, H, W]`` (full, replicated) → ``[B, N, D]`` (replicated)."""
        tokens = self.local_tokens(images)                       # [B, C/tp, N, D]
        local_agg = self.partial(tokens)                         # [B, 1, N, D]
        gathered = all_gather_forward_only(
            self.comm, local_agg, self.group, axis=1
        )                                                        # [B, tp, N, D]
        return self.final(gathered)                              # [B, N, D]

    # ------------------------------------------------------------------
    def rank_local_parameters(self) -> list[Tensor]:
        """Parameters unique to this rank (tokenizer shard, channel IDs,
        partial aggregators) — excluded from DP sync across the TP group."""
        return (
            self.tokenizer.parameters()
            + self.channel_ids.parameters()
            + self.partial.parameters()
        )

    def shared_parameters(self) -> list[Tensor]:
        """Parameters replicated (or TP-sharded) across the group."""
        return self.final.parameters()
