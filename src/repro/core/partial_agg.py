"""The partial-channel aggregation module (paper §3.3, Fig. 4).

One per D-CHAG rank: reduces the rank's channel subset to a single channel
through the hierarchical tree of :mod:`repro.core.tree`.  Units are either
cross-attention (``kind="cross"`` → the D-CHAG-C variant), lightweight
linear channel mixers (``kind="linear"`` → D-CHAG-L, the paper's best
performer), or Perceiver fusion blocks (``kind="perceiver"`` — the
Aurora-style module §3.5 predicts benefits from the most).  The *final*
aggregation layer shared across ranks always stays cross-attention (§3.3) —
that layer lives in :class:`repro.core.dchag.DCHAG`, not here.
"""

from __future__ import annotations

import numpy as np

from ..nn import ChannelCrossAttention, LinearChannelMixer, Module, ModuleList
from ..nn.perceiver import PerceiverChannelFusion
from ..tensor import Tensor
from .tree import TreeSpec, build_tree

__all__ = ["PartialChannelAggregator", "AGGREGATOR_KINDS"]

AGGREGATOR_KINDS = ("linear", "cross", "perceiver")


class _Reduce1(Module):
    """Adapter: a ``[B,C,N,D] -> [B,N,D]`` fusion module used as a tree unit."""

    def __init__(self, inner: Module) -> None:
        super().__init__()
        self.inner = inner

    def forward(self, x: Tensor) -> Tensor:
        return self.inner(x)


class PartialChannelAggregator(Module):
    """Hierarchically reduce ``[B, local_C, N, D] -> [B, 1, N, D]``."""

    def __init__(
        self,
        local_channels: int,
        dim: int,
        heads: int,
        rng: np.random.Generator,
        fanout: int = 0,
        kind: str = "linear",
    ) -> None:
        super().__init__()
        if kind not in AGGREGATOR_KINDS:
            raise ValueError(f"kind must be one of {AGGREGATOR_KINDS}, got {kind!r}")
        self.kind = kind
        self.dim = dim
        self.heads = heads
        self.spec: TreeSpec = build_tree(local_channels, fanout)

        def make_unit(c_in: int) -> Module:
            if kind == "cross":
                return ChannelCrossAttention(dim, heads, rng, num_queries=1)
            if kind == "perceiver":
                return _Reduce1(PerceiverChannelFusion(dim, heads, rng, num_latents=2, iterations=1))
            return LinearChannelMixer(c_in, 1, rng)

        self.units = ModuleList([make_unit(c) for c in self.spec.group_sizes])
        self.root = make_unit(len(self.spec.group_sizes)) if self.spec.has_root else None

    def forward(self, tokens: Tensor) -> Tensor:
        """*tokens*: ``[B, local_C, N, D]`` → ``[B, 1, N, D]``."""
        b, c, n, d = tokens.shape
        if c != self.spec.local_channels:
            raise ValueError(f"expected {self.spec.local_channels} channels, got {c}")
        outputs: list[Tensor] = []
        offset = 0
        for unit, size in zip(self.units, self.spec.group_sizes):
            chunk = tokens[:, offset : offset + size]        # [B, size, N, D]
            out = unit(chunk)                                 # [B, N, D]
            outputs.append(out.expand_dims(1))                # [B, 1, N, D]
            offset += size
        if self.root is None:
            return outputs[0]
        mid = Tensor.concat(outputs, axis=1)                  # [B, fanout, N, D]
        return self.root(mid).expand_dims(1)                  # [B, 1, N, D]

    def extra_parameter_count(self) -> int:
        """Parameters added relative to no partial aggregation (the memory
        overhead §3.2 trades against activation savings)."""
        return self.num_parameters()
