"""Hierarchical aggregation-tree geometry (paper §3.2, Fig. 3).

``TreeN`` semantics (matching §4.5's examples exactly): within one rank's
partial-channel aggregation module, *N* first-level aggregator units each
reduce ``local_channels / N`` channels to one, and for ``N > 1`` a local root
unit reduces those N intermediate channels to the rank's single output
channel.  ``Tree0`` (≡ Tree1) is a single unit over all local channels.

For 512 channels on 2 GPUs (256 local): ``Tree2`` → two units of 128
channels each (paper: "two channel aggregation layers, with a maximum of 128
input channels per layer"); ``Tree8`` → eight units of 32 channels each.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TreeSpec", "build_tree"]


@dataclass(frozen=True)
class TreeSpec:
    """Geometry of one rank's partial aggregation tree.

    Attributes
    ----------
    local_channels:
        Channels this rank aggregates.
    fanout:
        The ``N`` of ``TreeN`` (0 and 1 both mean a single unit).
    group_sizes:
        Channels seen by each first-level unit (len == effective N).
    has_root:
        Whether a local root unit (N → 1) follows the first level.
    """

    local_channels: int
    fanout: int
    group_sizes: tuple[int, ...]
    has_root: bool

    @property
    def num_units(self) -> int:
        """Total aggregator units on this rank (first level + optional root)."""
        return len(self.group_sizes) + (1 if self.has_root else 0)

    @property
    def max_channels_per_unit(self) -> int:
        """The figure the paper quotes: widest attention span in the tree."""
        widest = max(self.group_sizes)
        if self.has_root:
            widest = max(widest, len(self.group_sizes))
        return widest

    @property
    def depth(self) -> int:
        return 2 if self.has_root else 1


def build_tree(local_channels: int, fanout: int) -> TreeSpec:
    """Construct the :class:`TreeSpec` for ``Tree{fanout}``.

    ``fanout`` of 0 or 1 gives the single-unit tree.  Channels distribute as
    evenly as possible when ``fanout`` does not divide ``local_channels``.
    """
    if local_channels < 1:
        raise ValueError("local_channels must be >= 1")
    if fanout < 0:
        raise ValueError("fanout must be >= 0")
    n = max(1, fanout)
    if n > local_channels:
        raise ValueError(
            f"Tree{fanout} needs at least {fanout} local channels, got {local_channels}"
        )
    base = local_channels // n
    rem = local_channels % n
    sizes = tuple(base + (1 if i < rem else 0) for i in range(n))
    return TreeSpec(
        local_channels=local_channels,
        fanout=fanout,
        group_sizes=sizes,
        has_root=n > 1,
    )
