"""Configuration for the D-CHAG channel module."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DCHAGConfig"]


@dataclass(frozen=True)
class DCHAGConfig:
    """Hyper-parameters of the distributed channel stage.

    Attributes
    ----------
    channels:
        Total input channels (e.g. 500 for APPL hyperspectral, 80 for ERA5).
    patch:
        Patch size for tokenization.
    dim:
        Embedding dimension.
    heads:
        Attention heads (for cross-attention units and the final layer).
    fanout:
        ``TreeN`` fanout of the partial aggregation tree (0 ⇒ Tree0).
    kind:
        ``"linear"`` → D-CHAG-L (paper's best), ``"cross"`` → D-CHAG-C,
        ``"perceiver"`` → Aurora-style Perceiver partial fusion (§3.5).
    tp_shard_final:
        Shard the final cross-attention layer over the TP group (§3.3:
        "The final cross-attention layer is shared across all TP ranks …
        we can distribute the embedding space").
    """

    channels: int
    patch: int
    dim: int
    heads: int
    fanout: int = 0
    kind: str = "linear"
    tp_shard_final: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("linear", "cross", "perceiver"):
            raise ValueError(
                f"kind must be 'linear', 'cross' or 'perceiver', got {self.kind!r}"
            )
        if self.channels < 1 or self.patch < 1 or self.dim < 1 or self.heads < 1:
            raise ValueError("channels, patch, dim, heads must be positive")
        if self.dim % self.heads != 0:
            raise ValueError(f"dim {self.dim} not divisible by heads {self.heads}")

    @property
    def variant_name(self) -> str:
        suffix = {"linear": "L", "cross": "C", "perceiver": "P"}[self.kind]
        return f"D-CHAG-{suffix}-Tree{self.fanout}"
