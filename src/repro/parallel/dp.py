"""Data parallelism: replicate the model, shard the batch, AllReduce grads.

The paper's hybrid setup (§3.4) applies DP as the outermost axis — "in DP,
compute scales with communication", which is why Hybrid D-CHAG applies it as
early as possible (§6.3).
"""

from __future__ import annotations

import numpy as np

from ..dist import Communicator, ProcessGroup, average_gradients, broadcast_parameters
from ..nn import Module
from ..tensor import Tensor

__all__ = ["DataParallel", "shard_batch"]


def shard_batch(batch: np.ndarray, comm: Communicator, group: ProcessGroup | None = None) -> np.ndarray:
    """Return this rank's slice of the leading (batch) axis."""
    group = group if group is not None else comm.world.default_group
    n = group.size
    if batch.shape[0] % n != 0:
        raise ValueError(f"batch size {batch.shape[0]} not divisible by DP size {n}")
    step = batch.shape[0] // n
    idx = group.rank_index(comm.rank)
    return batch[idx * step : (idx + 1) * step]


class DataParallel(Module):
    """DDP-style wrapper: broadcast at init, ``sync_gradients`` after backward."""

    def __init__(
        self,
        comm: Communicator,
        group: ProcessGroup | None,
        module: Module,
        sync_init: bool = True,
    ) -> None:
        super().__init__()
        group = group if group is not None else comm.world.default_group
        self.comm = comm
        self.group = group
        self.module = module
        if sync_init and group.size > 1:
            broadcast_parameters(comm, module.parameters(), root=group.ranks[0], group=group)

    def forward(self, *args, **kwargs):
        return self.module(*args, **kwargs)

    def sync_gradients(self) -> None:
        """AllReduce (mean) every parameter gradient across the DP group."""
        if self.group.size > 1:
            average_gradients(self.comm, self.module.parameters(), group=self.group)

    def parameters(self) -> list[Tensor]:  # type: ignore[override]
        return self.module.parameters()
