"""Data parallelism: replicate the model, shard the batch, AllReduce grads.

The paper's hybrid setup (§3.4) applies DP as the outermost axis — "in DP,
compute scales with communication", which is why Hybrid D-CHAG applies it as
early as possible (§6.3).
"""

from __future__ import annotations

import numpy as np

from ..dist import Communicator, ProcessGroup, average_gradients, broadcast_parameters, site_key
from ..nn import Module
from ..tensor import Tensor

__all__ = ["DataParallel", "shard_batch"]


def shard_batch(batch: np.ndarray, comm: Communicator, group: ProcessGroup | None = None) -> np.ndarray:
    """Return this rank's slice of the leading (batch) axis."""
    group = group if group is not None else comm.world.default_group
    n = group.size
    if batch.shape[0] % n != 0:
        raise ValueError(f"batch size {batch.shape[0]} not divisible by DP size {n}")
    step = batch.shape[0] // n
    idx = group.rank_index(comm.rank)
    return batch[idx * step : (idx + 1) * step]


class DataParallel(Module):
    """DDP-style wrapper: broadcast at init, ``sync_gradients`` after backward.

    Compute-cost hooks: under a virtual clock (``run_spmd(...,
    clock=VirtualClock(machine))``), ``forward_seconds``/``backward_seconds``
    charge the replica's per-step compute onto the rank timeline — forward
    after the wrapped module runs, backward just before the gradient sync —
    and the sync's AllReduce is stamped ``phase="dp_sync"``.  That is the
    exact shape :func:`repro.perf.overlap.derive_overlaps` needs to derive
    the DP overlap fraction (how much of the gradient AllReduce a bucketed
    implementation hides under backward).  Both hooks are no-ops without a
    clock.

    ``grad_buckets > 1`` runs the **bucketed-DDP** schedule: parameters are
    split into that many contiguous buckets and each bucket's AllReduce is
    issued right after the slice of backward compute that produced its
    gradients.  Under an issue-queue clock (``VirtualClock(...,
    eager_phases={"dp_sync"})``) every bucket but the last then overlaps
    the remaining backward compute, which is exactly how real DDP hides its
    gradient traffic; the derived exposure is per bucket
    (:func:`repro.perf.overlap.derive_bucket_exposures`).  Wire accounting
    is unchanged — bucketing reorders time, not bytes.
    """

    def __init__(
        self,
        comm: Communicator,
        group: ProcessGroup | None,
        module: Module,
        sync_init: bool = True,
        forward_seconds: float = 0.0,
        backward_seconds: float = 0.0,
        grad_buckets: int = 1,
    ) -> None:
        super().__init__()
        group = group if group is not None else comm.world.default_group
        if grad_buckets < 1:
            raise ValueError(f"grad_buckets must be >= 1, got {grad_buckets}")
        self.comm = comm
        self.group = group
        self.module = module
        self.forward_seconds = float(forward_seconds)
        self.backward_seconds = float(backward_seconds)
        self.grad_buckets = int(grad_buckets)
        # One pool site per sync bucket: flat gradient buckets reuse their
        # buffers across steps (repro.dist.pool allocation discipline).
        self._sync_keys = [site_key("dp.sync") for _ in range(self.grad_buckets)]
        if sync_init and group.size > 1:
            broadcast_parameters(comm, module.parameters(), root=group.ranks[0], group=group)

    def forward(self, *args, **kwargs):
        out = self.module(*args, **kwargs)
        if self.forward_seconds:
            self.comm.charge_compute(self.forward_seconds, phase="forward")
        return out

    def sync_gradients(self) -> None:
        """AllReduce (mean) every parameter gradient across the DP group."""
        params = self.module.parameters()
        buckets = min(self.grad_buckets, max(1, len(params)))
        if buckets <= 1 or self.group.size <= 1:
            if self.backward_seconds:
                self.comm.charge_compute(self.backward_seconds, phase="backward")
            if self.group.size > 1:
                with self.comm.phase_scope("dp_sync"):
                    average_gradients(
                        self.comm, params, group=self.group,
                        pool_key=self._sync_keys[0],
                    )
            return
        step = -(-len(params) // buckets)
        chunks = [params[lo : lo + step] for lo in range(0, len(params), step)]
        per = self.backward_seconds / len(chunks)
        for ci, chunk in enumerate(chunks):
            # The bucket's gradients exist only after its share of backward
            # compute — charge first, then issue (eagerly, under an
            # issue-queue clock) so later slices can hide earlier buckets.
            if per:
                self.comm.charge_compute(per, phase="backward")
            with self.comm.phase_scope("dp_sync"):
                average_gradients(
                    self.comm, chunk, group=self.group, pool_key=self._sync_keys[ci]
                )

    def parameters(self) -> list[Tensor]:  # type: ignore[override]
        return self.module.parameters()
