"""Sequence parallelism (paper §3.5's "other model-parallel strategies").

The paper notes D-CHAG composes with SP exactly where it composes with TP:
"Sequence Parallelism could operate on the same model segments — just before
the self-attention layers — to distribute sequence length … enabling
tokenization and hierarchical aggregation to be distributed along the axis
in which the data are fused."

This module implements DeepSpeed-Ulysses-style SP: activations are sharded
along the token axis (``[B, N/sp, D]``); attention switches to *head*
sharding with a pair of all-to-alls (tokens→heads before the attention
kernel, heads→tokens after), so every rank computes full-sequence attention
for ``heads/sp`` heads.  LayerNorms and MLPs run directly on the token
shard with no communication at all.

Every collective is phase-tagged — :data:`SP_A2A_PHASE` for the per-block
all-to-alls (forward and backward), :data:`SP_GATHER_PHASE` /
:data:`SP_SCATTER_PHASE` for the sequence-boundary gathers — matching
``repro.perf.calibrate.AXIS_PHASES``, so overlap derivation and the
comm-volume gate reconcile live SP traffic against the analytic
:func:`~repro.perf.comm_model.step_comm_schedule` per op × phase × link.
With ``SPContext(pool=True)`` (the default) the all-to-alls and the
scatter's backward gather land in site-keyed :class:`~repro.dist.BufferPool`
``out=`` buffers: steady-state steps allocate nothing, and a rank whose
peer drifts shape raises :class:`~repro.dist.SpmdError` loudly through the
runtime's exact ``out=`` validation instead of silently reallocating.

Composition with D-CHAG: ``scatter_sequence`` the replicated output of the
:class:`~repro.core.dchag.DCHAG` front-end, then run :class:`SPViTEncoder`
over the same group.
"""

from __future__ import annotations

import numpy as np

from ..dist import Communicator, ProcessGroup, site_key
from ..nn import LayerNorm, Linear, MLP, Module, ModuleList
from ..nn.attention import merge_heads, scaled_dot_product_attention, split_heads
from ..tensor import Tensor

__all__ = [
    "SP_A2A_PHASE",
    "SP_GATHER_PHASE",
    "SP_SCATTER_PHASE",
    "SPContext",
    "scatter_sequence",
    "gather_sequence",
    "all_to_all_tokens_to_heads",
    "all_to_all_heads_to_tokens",
    "SPSelfAttention",
    "SPTransformerBlock",
    "SPViTEncoder",
]

#: Traffic phases stamped on SP collectives — the names the calibration
#: harness and commvol gate key their per-axis books on.
SP_A2A_PHASE = "sp_a2a"
SP_GATHER_PHASE = "sp_gather"
SP_SCATTER_PHASE = "sp_scatter"


class SPContext:
    """The (communicator, group) pair SP layers communicate over.

    Mirrors :class:`~repro.parallel.tp.TPContext`'s conventions:
    ``block_seconds`` charges per-block forward compute onto the virtual
    clock (half after attention, half after the MLP — SP all-to-alls sit on
    the critical path between them, matching the analytic model's overlap-0
    treatment); ``pool=True`` gives every all-to-all site pooled ``out=``
    buffers (``pool=False`` is the allocating reference the parity tests
    compare against).  Unlike TP, the phases are fixed —
    :data:`SP_A2A_PHASE` and friends — because the measured replay's
    ``AXIS_PHASES`` books expect exactly those names.
    """

    def __init__(
        self,
        comm: Communicator,
        group: ProcessGroup | None = None,
        block_seconds: float = 0.0,
        pool: bool = True,
    ) -> None:
        self.comm = comm
        self.group = group if group is not None else comm.world.default_group
        self.size = self.group.size
        self.index = self.group.rank_index(comm.rank)
        self.block_seconds = float(block_seconds)
        self.pool = bool(pool)
        self._scatter_key = self.pool_key("sp.scatter")

    def pool_key(self, prefix: str) -> str | None:
        """A site key for one pooled collective site (or ``None``)."""
        return site_key(prefix) if self.pool else None

    def charge(self, seconds: float, phase: str = "forward") -> None:
        """Charge compute onto this rank's virtual timeline."""
        if seconds:
            self.comm.charge_compute(seconds, phase=phase)


def scatter_sequence(
    ctx: SPContext, x: Tensor, axis: int = 1, pool_key: str | None = None
) -> Tensor:
    """Take this rank's token shard of a *replicated* tensor.

    Forward is a local slice; backward re-assembles the full gradient with a
    forward-only gather (valid because the upstream producer is replicated,
    mirroring the D-CHAG gather argument in reverse), stamped
    :data:`SP_SCATTER_PHASE`.  The gather lands in pooled per-part ``out=``
    buffers keyed by *pool_key* (default: the context's own scatter site
    when pooling is on); a peer whose gradient shape drifts away from the
    cached site shapes raises :class:`~repro.dist.SpmdError`.
    """
    n = x.shape[axis]
    sp = ctx.size
    if n % sp != 0:
        raise ValueError(f"sequence length {n} not divisible by SP degree {sp}")
    step = n // sp
    lo = ctx.index * step
    idx = [slice(None)] * x.ndim
    idx[axis] = slice(lo, lo + step)
    out_data = x.data[tuple(idx)].copy()
    key = pool_key if pool_key is not None else ctx._scatter_key

    def backward(grad: np.ndarray) -> None:
        with ctx.comm.phase_scope(SP_SCATTER_PHASE):
            if key is None:
                parts = ctx.comm.all_gather(grad, group=ctx.group)
                full = np.concatenate(parts, axis=axis)
            else:
                pool = ctx.comm.pool
                site = pool.meta(key)
                shapes = site.get("shapes") if site.get("local") == grad.shape else None
                if shapes is None:
                    # First visit (or a lockstep shape change): allocating
                    # path learns the peers' part shapes for the site.
                    parts = ctx.comm.all_gather(grad, group=ctx.group)
                    full = np.concatenate(parts, axis=axis)
                    site["local"] = grad.shape
                    site["shapes"] = [p.shape for p in parts]
                else:
                    outs = [
                        pool.take(f"{key}/p{i}", s, grad.dtype)
                        for i, s in enumerate(shapes)
                    ]
                    parts = ctx.comm.all_gather(grad, group=ctx.group, out=outs)
                    cat_shape = list(grad.shape)
                    cat_shape[axis] = sum(s[axis] for s in shapes)
                    full = pool.take(f"{key}/cat", cat_shape, grad.dtype)
                    np.concatenate(parts, axis=axis, out=full)
        x._accumulate(full)  # _accumulate copies unowned arrays — pool-safe

    return x._make(out_data, (x,), backward, "scatter_sequence")


def gather_sequence(ctx: SPContext, x: Tensor, axis: int = 1) -> Tensor:
    """AllGather token shards back to the full (replicated) sequence,
    stamped :data:`SP_GATHER_PHASE`.

    Backward takes the local slice — the conjugate of
    :func:`scatter_sequence`, again communication-free going backward.
    """
    from ..dist import all_gather_forward_only

    with ctx.comm.phase_scope(SP_GATHER_PHASE):
        return all_gather_forward_only(ctx.comm, x, ctx.group, axis=axis)


def _a2a(
    ctx: SPContext,
    x: Tensor,
    split_axis: int,
    concat_axis: int,
    pool_key: str | None = None,
) -> Tensor:
    """Differentiable all-to-all: split *x* along ``split_axis`` into sp
    pieces (one per rank), receive sp pieces and concatenate along
    ``concat_axis``.  Backward is the mirrored all-to-all; both directions
    are stamped :data:`SP_A2A_PHASE`.

    With *pool_key*, recv chunks and the concatenated result land in pooled
    site buffers: the first visit allocates and caches the peer chunk
    shapes, steady-state visits allocate nothing, and a peer whose chunk
    shape drifts from the cached site shapes fails the runtime's exact
    ``out=`` validation with :class:`~repro.dist.SpmdError`.
    """
    sp = ctx.size
    if x.shape[split_axis] % sp != 0:
        raise ValueError(
            f"axis {split_axis} of size {x.shape[split_axis]} not divisible by sp={sp}"
        )

    def exchange(data: np.ndarray, src_axis: int, dst_axis: int, leg: str) -> np.ndarray:
        send = np.split(data, sp, axis=src_axis)
        with ctx.comm.phase_scope(SP_A2A_PHASE):
            if pool_key is None:
                recv = ctx.comm.all_to_all(send, group=ctx.group)
                return np.concatenate(recv, axis=dst_axis)
            pool = ctx.comm.pool
            key = f"{pool_key}.{leg}"
            site = pool.meta(key)
            shapes = site.get("shapes") if site.get("local") == data.shape else None
            if shapes is None:
                recv = ctx.comm.all_to_all(send, group=ctx.group)
                out = np.concatenate(recv, axis=dst_axis)
                site["local"] = data.shape
                site["shapes"] = [r.shape for r in recv]
                return out
            outs = [
                pool.take(f"{key}/r{i}", s, data.dtype) for i, s in enumerate(shapes)
            ]
            recv = ctx.comm.all_to_all(send, group=ctx.group, out=outs)
            cat_shape = list(shapes[0])
            cat_shape[dst_axis] = sum(s[dst_axis] for s in shapes)
            cat = pool.take(f"{key}/cat", cat_shape, data.dtype)
            np.concatenate(recv, axis=dst_axis, out=cat)
            return cat

    out_data = exchange(x.data, split_axis, concat_axis, "f")

    def backward(grad: np.ndarray) -> None:
        # _accumulate copies unowned arrays, so the pooled cat buffer is
        # safe to hand over and reuse next step.
        x._accumulate(exchange(grad, concat_axis, split_axis, "b"))

    return x._make(out_data, (x,), backward, "all_to_all")


def all_to_all_tokens_to_heads(
    ctx: SPContext, x: Tensor, pool_key: str | None = None
) -> Tensor:
    """[B, h, N/sp, hd] (all heads, token shard) → [B, h/sp, N, hd]
    (head shard, full sequence)."""
    return _a2a(ctx, x, split_axis=1, concat_axis=2, pool_key=pool_key)


def all_to_all_heads_to_tokens(
    ctx: SPContext, x: Tensor, pool_key: str | None = None
) -> Tensor:
    """[B, h/sp, N, hd] → [B, h, N/sp, hd] — the inverse switch."""
    return _a2a(ctx, x, split_axis=2, concat_axis=1, pool_key=pool_key)


class SPSelfAttention(Module):
    """Full-sequence attention under sequence sharding (Ulysses pattern).

    Projections run on the token shard; all-to-alls flip the sharded axis
    to heads for the attention kernel and back — four per forward (q, k, v
    tokens→heads plus the output heads→tokens), each mirrored in backward.
    """

    def __init__(
        self,
        ctx: SPContext,
        dim: int,
        heads: int,
        master_qkv_w: np.ndarray,
        master_qkv_b: np.ndarray,
        master_proj_w: np.ndarray,
        master_proj_b: np.ndarray,
    ) -> None:
        super().__init__()
        if heads % ctx.size != 0:
            raise ValueError(f"heads {heads} not divisible by SP degree {ctx.size}")
        self.ctx = ctx
        self.dim = dim
        self.heads = heads
        self.qkv = Linear(dim, 3 * dim, weight=master_qkv_w, bias_value=master_qkv_b)
        self.proj = Linear(dim, dim, weight=master_proj_w, bias_value=master_proj_b)
        self._a2a_keys = tuple(ctx.pool_key(f"sp.attn.{leg}") for leg in ("q", "k", "v", "out"))

    def forward(self, x: Tensor) -> Tensor:
        """[B, N/sp, D] -> [B, N/sp, D]."""
        ctx = self.ctx
        kq, kk, kv, kout = self._a2a_keys
        qkv = self.qkv(x)
        q, k, v = qkv.split(3, axis=-1)
        q, k, v = (split_heads(t, self.heads) for t in (q, k, v))  # [B, h, N/sp, hd]
        q = all_to_all_tokens_to_heads(ctx, q, pool_key=kq)        # [B, h/sp, N, hd]
        k = all_to_all_tokens_to_heads(ctx, k, pool_key=kk)
        v = all_to_all_tokens_to_heads(ctx, v, pool_key=kv)
        out = scaled_dot_product_attention(q, k, v)
        out = all_to_all_heads_to_tokens(ctx, out, pool_key=kout)  # [B, h, N/sp, hd]
        return self.proj(merge_heads(out))


class SPTransformerBlock(Module):
    """Pre-norm block on a token shard: only the attention communicates."""

    def __init__(self, ctx: SPContext, dim: int, heads: int, masters: dict[str, np.ndarray]) -> None:
        super().__init__()
        self.ctx = ctx
        self.norm1 = LayerNorm(dim)
        self.norm1.load_state_dict({"weight": masters["norm1.weight"], "bias": masters["norm1.bias"]})
        self.attn = SPSelfAttention(
            ctx, dim, heads,
            masters["attn.qkv.weight"], masters["attn.qkv.bias"],
            masters["attn.proj.weight"], masters["attn.proj.bias"],
        )
        self.norm2 = LayerNorm(dim)
        self.norm2.load_state_dict({"weight": masters["norm2.weight"], "bias": masters["norm2.bias"]})
        self.mlp = MLP.from_masters(
            masters["mlp.fc1.weight"], masters["mlp.fc1.bias"],
            masters["mlp.fc2.weight"], masters["mlp.fc2.bias"],
        )

    def forward(self, x: Tensor) -> Tensor:
        ctx = self.ctx
        h = self.attn(self.norm1(x))
        ctx.charge(0.5 * ctx.block_seconds)
        x = x + h
        h = self.mlp(self.norm2(x))
        ctx.charge(0.5 * ctx.block_seconds)
        return x + h


class SPViTEncoder(Module):
    """Sequence-parallel ViT encoder built from a serial encoder's state.

    Input is the rank's token shard ``[B, N/sp, D]``; pass replicated input
    through :func:`scatter_sequence` first, and :func:`gather_sequence` the
    output if the downstream head needs the full sequence.
    """

    def __init__(
        self,
        ctx: SPContext,
        dim: int,
        depth: int,
        heads: int,
        master_state: dict[str, np.ndarray],
    ) -> None:
        super().__init__()
        self.ctx = ctx
        blocks = []
        for i in range(depth):
            prefix = f"blocks.{i}."
            masters = {k[len(prefix):]: v for k, v in master_state.items() if k.startswith(prefix)}
            blocks.append(SPTransformerBlock(ctx, dim, heads, masters))
        self.blocks = ModuleList(blocks)
        self.norm = LayerNorm(dim)
        self.norm.load_state_dict(
            {"weight": master_state["norm.weight"], "bias": master_state["norm.bias"]}
        )

    def forward(self, x: Tensor) -> Tensor:
        for block in self.blocks:
            x = block(x)
        return self.norm(x)
