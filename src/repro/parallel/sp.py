"""Sequence parallelism (paper §3.5's "other model-parallel strategies").

The paper notes D-CHAG composes with SP exactly where it composes with TP:
"Sequence Parallelism could operate on the same model segments — just before
the self-attention layers — to distribute sequence length … enabling
tokenization and hierarchical aggregation to be distributed along the axis
in which the data are fused."

This module implements DeepSpeed-Ulysses-style SP: activations are sharded
along the token axis (``[B, N/sp, D]``); attention switches to *head*
sharding with a pair of all-to-alls (tokens→heads before the attention
kernel, heads→tokens after), so every rank computes full-sequence attention
for ``heads/sp`` heads.  LayerNorms and MLPs run directly on the token
shard with no communication at all.

Composition with D-CHAG: ``scatter_sequence`` the replicated output of the
:class:`~repro.core.dchag.DCHAG` front-end, then run :class:`SPViTEncoder`
over the same group.
"""

from __future__ import annotations

import numpy as np

from ..dist import Communicator, ProcessGroup
from ..nn import LayerNorm, Linear, MLP, Module, ModuleList
from ..nn.attention import merge_heads, scaled_dot_product_attention, split_heads
from ..tensor import Tensor

__all__ = [
    "SPContext",
    "scatter_sequence",
    "gather_sequence",
    "all_to_all_tokens_to_heads",
    "all_to_all_heads_to_tokens",
    "SPSelfAttention",
    "SPTransformerBlock",
    "SPViTEncoder",
]


class SPContext:
    """The (communicator, group) pair SP layers communicate over."""

    def __init__(self, comm: Communicator, group: ProcessGroup | None = None) -> None:
        self.comm = comm
        self.group = group if group is not None else comm.world.default_group
        self.size = self.group.size
        self.index = self.group.rank_index(comm.rank)


def scatter_sequence(ctx: SPContext, x: Tensor, axis: int = 1) -> Tensor:
    """Take this rank's token shard of a *replicated* tensor.

    Forward is a local slice; backward re-assembles the full gradient with a
    forward-only gather (valid because the upstream producer is replicated,
    mirroring the D-CHAG gather argument in reverse).
    """
    n = x.shape[axis]
    sp = ctx.size
    if n % sp != 0:
        raise ValueError(f"sequence length {n} not divisible by SP degree {sp}")
    step = n // sp
    lo = ctx.index * step
    idx = [slice(None)] * x.ndim
    idx[axis] = slice(lo, lo + step)
    out_data = x.data[tuple(idx)].copy()

    def backward(grad: np.ndarray) -> None:
        parts = ctx.comm.all_gather(grad, group=ctx.group)
        x._accumulate(np.concatenate(parts, axis=axis))

    return x._make(out_data, (x,), backward, "scatter_sequence")


def gather_sequence(ctx: SPContext, x: Tensor, axis: int = 1) -> Tensor:
    """AllGather token shards back to the full (replicated) sequence.

    Backward takes the local slice — the conjugate of
    :func:`scatter_sequence`, again communication-free going backward.
    """
    from ..dist import all_gather_forward_only

    return all_gather_forward_only(ctx.comm, x, ctx.group, axis=axis)


def _a2a(ctx: SPContext, x: Tensor, split_axis: int, concat_axis: int) -> Tensor:
    """Differentiable all-to-all: split *x* along ``split_axis`` into sp
    pieces (one per rank), receive sp pieces and concatenate along
    ``concat_axis``.  Backward is the mirrored all-to-all."""
    sp = ctx.size
    if x.shape[split_axis] % sp != 0:
        raise ValueError(
            f"axis {split_axis} of size {x.shape[split_axis]} not divisible by sp={sp}"
        )
    send = np.split(x.data, sp, axis=split_axis)
    recv = ctx.comm.all_to_all(send, group=ctx.group)
    out_data = np.concatenate(recv, axis=concat_axis)

    def backward(grad: np.ndarray) -> None:
        g_send = np.split(grad, sp, axis=concat_axis)
        g_recv = ctx.comm.all_to_all(g_send, group=ctx.group)
        x._accumulate(np.concatenate(g_recv, axis=split_axis))

    return x._make(out_data, (x,), backward, "all_to_all")


def all_to_all_tokens_to_heads(ctx: SPContext, x: Tensor) -> Tensor:
    """[B, h, N/sp, hd] (all heads, token shard) → [B, h/sp, N, hd]
    (head shard, full sequence)."""
    return _a2a(ctx, x, split_axis=1, concat_axis=2)


def all_to_all_heads_to_tokens(ctx: SPContext, x: Tensor) -> Tensor:
    """[B, h/sp, N, hd] → [B, h, N/sp, hd] — the inverse switch."""
    return _a2a(ctx, x, split_axis=2, concat_axis=1)


class SPSelfAttention(Module):
    """Full-sequence attention under sequence sharding (Ulysses pattern).

    Projections run on the token shard; two all-to-alls flip the sharded
    axis to heads for the attention kernel and back.
    """

    def __init__(
        self,
        ctx: SPContext,
        dim: int,
        heads: int,
        master_qkv_w: np.ndarray,
        master_qkv_b: np.ndarray,
        master_proj_w: np.ndarray,
        master_proj_b: np.ndarray,
    ) -> None:
        super().__init__()
        if heads % ctx.size != 0:
            raise ValueError(f"heads {heads} not divisible by SP degree {ctx.size}")
        self.ctx = ctx
        self.dim = dim
        self.heads = heads
        self.qkv = Linear(dim, 3 * dim, weight=master_qkv_w, bias_value=master_qkv_b)
        self.proj = Linear(dim, dim, weight=master_proj_w, bias_value=master_proj_b)

    def forward(self, x: Tensor) -> Tensor:
        """[B, N/sp, D] -> [B, N/sp, D]."""
        ctx = self.ctx
        qkv = self.qkv(x)
        q, k, v = qkv.split(3, axis=-1)
        q, k, v = (split_heads(t, self.heads) for t in (q, k, v))  # [B, h, N/sp, hd]
        q = all_to_all_tokens_to_heads(ctx, q)                     # [B, h/sp, N, hd]
        k = all_to_all_tokens_to_heads(ctx, k)
        v = all_to_all_tokens_to_heads(ctx, v)
        out = scaled_dot_product_attention(q, k, v)
        out = all_to_all_heads_to_tokens(ctx, out)                 # [B, h, N/sp, hd]
        return self.proj(merge_heads(out))


class SPTransformerBlock(Module):
    """Pre-norm block on a token shard: only the attention communicates."""

    def __init__(self, ctx: SPContext, dim: int, heads: int, masters: dict[str, np.ndarray]) -> None:
        super().__init__()
        self.norm1 = LayerNorm(dim)
        self.norm1.load_state_dict({"weight": masters["norm1.weight"], "bias": masters["norm1.bias"]})
        self.attn = SPSelfAttention(
            ctx, dim, heads,
            masters["attn.qkv.weight"], masters["attn.qkv.bias"],
            masters["attn.proj.weight"], masters["attn.proj.bias"],
        )
        self.norm2 = LayerNorm(dim)
        self.norm2.load_state_dict({"weight": masters["norm2.weight"], "bias": masters["norm2.bias"]})
        hidden = masters["mlp.fc1.weight"].shape[1]
        self.mlp = MLP(dim, hidden, np.random.default_rng(0))
        self.mlp.load_state_dict({
            "fc1.weight": masters["mlp.fc1.weight"], "fc1.bias": masters["mlp.fc1.bias"],
            "fc2.weight": masters["mlp.fc2.weight"], "fc2.bias": masters["mlp.fc2.bias"],
        })

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.norm1(x))
        return x + self.mlp(self.norm2(x))


class SPViTEncoder(Module):
    """Sequence-parallel ViT encoder built from a serial encoder's state.

    Input is the rank's token shard ``[B, N/sp, D]``; pass replicated input
    through :func:`scatter_sequence` first, and :func:`gather_sequence` the
    output if the downstream head needs the full sequence.
    """

    def __init__(
        self,
        ctx: SPContext,
        dim: int,
        depth: int,
        heads: int,
        master_state: dict[str, np.ndarray],
    ) -> None:
        super().__init__()
        self.ctx = ctx
        blocks = []
        for i in range(depth):
            prefix = f"blocks.{i}."
            masters = {k[len(prefix):]: v for k, v in master_state.items() if k.startswith(prefix)}
            blocks.append(SPTransformerBlock(ctx, dim, heads, masters))
        self.blocks = ModuleList(blocks)
        self.norm = LayerNorm(dim)
        self.norm.load_state_dict(
            {"weight": master_state["norm.weight"], "bias": master_state["norm.bias"]}
        )

    def forward(self, x: Tensor) -> Tensor:
        for block in self.blocks:
            x = block(x)
        return self.norm(x)
