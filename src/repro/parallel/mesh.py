"""Device mesh for hybrid parallelism (paper §3.4, Fig. 5).

The paper composes the axes: the D-CHAG/TP group (innermost — identical
groups by construction, §3.4), Ulysses sequence parallelism over the same
model segments (§3.5), FSDP across TP×SP groups, and DP outermost.  A
:class:`DeviceMesh` factors the world as ``world = dp × fsdp × sp × tp``
with TP fastest-varying, so that a TP group maps onto one node's GCDs (fast
Infinity Fabric links), SP sits just outside it, and DP crosses nodes
(Slingshot) — the locality §6.3 credits for Hybrid D-CHAG's scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dist import Communicator, ProcessGroup

__all__ = ["DeviceMesh"]


@dataclass(frozen=True)
class MeshCoords:
    dp: int
    fsdp: int
    sp: int
    tp: int


class DeviceMesh:
    """Factor the world into (dp, fsdp, sp, tp) process groups.

    Rank layout: ``rank = ((dp_idx * fsdp + fsdp_idx) * sp + sp_idx) * tp
    + tp_idx`` — TP contiguous (intra-node), then SP, then FSDP, then DP.
    """

    def __init__(
        self,
        comm: Communicator,
        tp: int = 1,
        fsdp: int = 1,
        dp: int | None = None,
        sp: int = 1,
    ) -> None:
        world = comm.size
        if dp is None:
            if world % (tp * sp * fsdp) != 0:
                raise ValueError(
                    f"world {world} not divisible by tp*sp*fsdp={tp * sp * fsdp}"
                )
            dp = world // (tp * sp * fsdp)
        if dp * fsdp * sp * tp != world:
            raise ValueError(
                f"dp*fsdp*sp*tp = {dp * fsdp * sp * tp} != world size {world}"
            )
        self.comm = comm
        self.tp_size, self.sp_size, self.fsdp_size, self.dp_size = tp, sp, fsdp, dp
        r = comm.rank
        self.coords = MeshCoords(
            dp=r // (fsdp * sp * tp),
            fsdp=(r // (sp * tp)) % fsdp,
            sp=(r // tp) % sp,
            tp=r % tp,
        )

        c = self.coords
        self.tp_group: ProcessGroup = comm.group(
            [((c.dp * fsdp + c.fsdp) * sp + c.sp) * tp + t for t in range(tp)]
        )
        self.sp_group: ProcessGroup = comm.group(
            [((c.dp * fsdp + c.fsdp) * sp + s) * tp + c.tp for s in range(sp)]
        )
        self.fsdp_group: ProcessGroup = comm.group(
            [((c.dp * fsdp + f) * sp + c.sp) * tp + c.tp for f in range(fsdp)]
        )
        self.dp_group: ProcessGroup = comm.group(
            [((d * fsdp + c.fsdp) * sp + c.sp) * tp + c.tp for d in range(dp)]
        )
        # D-CHAG shares the TP group by construction (§3.4).
        self.dchag_group = self.tp_group

    def describe(self) -> str:
        return (
            f"DeviceMesh(world={self.comm.size}, dp={self.dp_size}, "
            f"fsdp={self.fsdp_size}, sp={self.sp_size}, tp={self.tp_size}, "
            f"rank={self.comm.rank}, coords={self.coords})"
        )
