"""Device mesh for hybrid parallelism (paper §3.4, Fig. 5).

The paper composes three axes: the D-CHAG/TP group (innermost — identical
groups by construction, §3.4), FSDP across TP groups, and DP outermost.  A
:class:`DeviceMesh` factors the world as ``world = dp × fsdp × tp`` with TP
fastest-varying, so that a TP group maps onto one node's GCDs (fast Infinity
Fabric links) and DP crosses nodes (Slingshot) — the locality §6.3 credits
for Hybrid D-CHAG's scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dist import Communicator, ProcessGroup

__all__ = ["DeviceMesh"]


@dataclass(frozen=True)
class MeshCoords:
    dp: int
    fsdp: int
    tp: int


class DeviceMesh:
    """Factor the world into (dp, fsdp, tp) process groups.

    Rank layout: ``rank = (dp_idx * fsdp + fsdp_idx) * tp + tp_idx`` — TP
    contiguous (intra-node), then FSDP, then DP.
    """

    def __init__(self, comm: Communicator, tp: int = 1, fsdp: int = 1, dp: int | None = None) -> None:
        world = comm.size
        if dp is None:
            if world % (tp * fsdp) != 0:
                raise ValueError(f"world {world} not divisible by tp*fsdp={tp * fsdp}")
            dp = world // (tp * fsdp)
        if dp * fsdp * tp != world:
            raise ValueError(f"dp*fsdp*tp = {dp * fsdp * tp} != world size {world}")
        self.comm = comm
        self.tp_size, self.fsdp_size, self.dp_size = tp, fsdp, dp
        r = comm.rank
        self.coords = MeshCoords(dp=r // (fsdp * tp), fsdp=(r // tp) % fsdp, tp=r % tp)

        c = self.coords
        self.tp_group: ProcessGroup = comm.group(
            [(c.dp * fsdp + c.fsdp) * tp + t for t in range(tp)]
        )
        self.fsdp_group: ProcessGroup = comm.group(
            [(c.dp * fsdp + f) * tp + c.tp for f in range(fsdp)]
        )
        self.dp_group: ProcessGroup = comm.group(
            [(d * fsdp + c.fsdp) * tp + c.tp for d in range(dp)]
        )
        # D-CHAG shares the TP group by construction (§3.4).
        self.dchag_group = self.tp_group

    def describe(self) -> str:
        return (
            f"DeviceMesh(world={self.comm.size}, dp={self.dp_size}, "
            f"fsdp={self.fsdp_size}, tp={self.tp_size}, rank={self.comm.rank}, "
            f"coords={self.coords})"
        )
