"""Distributed channel tokenization (paper §3.1, Fig. 2 bottom).

Each TP rank tokenizes only ``C / tp`` channels (owning just those channels'
embedding weights), then an **autograd AllGather across both the channel and
spatial dimensions** reconstructs the full ``[B, C, N, D]`` token tensor on
every rank so the (TP-sharded but channel-complete) aggregation module can
run.  The gather is :func:`~repro.dist.all_gather_autograd`, so the backward
pass pays a ReduceScatter — the communication overhead that §4.4 shows
negates the tokenization savings, and that D-CHAG then eliminates.
"""

from __future__ import annotations

import numpy as np

from ..dist import Communicator, ProcessGroup, all_gather_autograd, split_sizes
from ..nn import ChannelIDEmbedding, Module, PatchTokenizer
from ..tensor import Tensor

__all__ = ["channel_shard", "DistributedTokenizer"]


def channel_shard(channels: int, group: ProcessGroup, world_rank: int) -> slice:
    """The contiguous channel block owned by *world_rank* within *group*.

    Channel counts need not divide the group size (the paper's 10-channel
    example): remainder channels go to the lowest group ranks, one each
    (:func:`~repro.dist.split_sizes`), and the gathers downstream run as
    padded collectives whose pad is stripped before results are returned.
    """
    n = group.size
    if channels < n:
        raise ValueError(
            f"cannot shard {channels} channels over {n} ranks: every rank needs at least one"
        )
    sizes = split_sizes(channels, n)
    idx = group.rank_index(world_rank)
    start = int(sum(sizes[:idx]))
    return slice(start, start + sizes[idx])


class DistributedTokenizer(Module):
    """Tokenize a channel shard locally, AllGather to the full token tensor.

    Built from master tokenizer weights (``[C, p², D]``) so the result is
    bitwise-identical to the serial :class:`~repro.nn.PatchTokenizer` on the
    same inputs; the channel-ID embedding is sliced from the same master
    table and added *before* the gather.
    """

    def __init__(
        self,
        comm: Communicator,
        group: ProcessGroup | None,
        channels: int,
        patch: int,
        dim: int,
        master_weight: np.ndarray,
        master_bias: np.ndarray | None = None,
        master_channel_ids: np.ndarray | None = None,
    ) -> None:
        super().__init__()
        group = group if group is not None else comm.world.default_group
        self.comm = comm
        self.group = group
        self.channels = channels
        self.shard = channel_shard(channels, group, comm.rank)
        local_c = self.shard.stop - self.shard.start
        bias = master_bias[self.shard] if master_bias is not None else None
        self.tokenizer = PatchTokenizer(
            local_c,
            patch,
            dim,
            weight=np.ascontiguousarray(master_weight[self.shard]),
            bias_value=np.ascontiguousarray(bias) if bias is not None else None,
        )
        self.channel_ids = (
            ChannelIDEmbedding(
                local_c, dim, table=np.ascontiguousarray(master_channel_ids[self.shard])
            )
            if master_channel_ids is not None
            else None
        )

    def local_tokens(self, images: np.ndarray) -> Tensor:
        """Tokenize this rank's channel shard: [B, C/tp, N, D]."""
        local = images[:, self.shard]
        tokens = self.tokenizer(local)
        if self.channel_ids is not None:
            tokens = self.channel_ids(tokens)
        return tokens

    def forward(self, images: np.ndarray) -> Tensor:
        """[B, C, H, W] -> replicated [B, C, N, D] via autograd AllGather."""
        tokens = self.local_tokens(images)
        # Gather on the channel axis; payload spans channel *and* spatial dims.
        return all_gather_autograd(self.comm, tokens, self.group, axis=1)
