"""Tensor parallelism (Megatron-style), the paper's baseline (§4.3).

TP shards the *embedding* dimension: attention layers split by head, MLPs by
column-then-row, with the conjugate communication operators
:func:`~repro.dist.copy_to_group` (identity fwd / AllReduce bwd) and
:func:`~repro.dist.reduce_from_group` (AllReduce fwd / identity bwd) at the
region boundaries.

Every parallel layer is constructed from a **master** weight array and
slices its rank shard deterministically, so a TP model on *n* ranks is
bitwise-equivalent to the serial model built from the same masters — the
equivalence the paper leans on when it uses single-GPU runs as the
correctness baseline (§5).
"""

from __future__ import annotations

import contextlib

import numpy as np

from ..dist import Communicator, ProcessGroup, copy_to_group, reduce_from_group, site_key
from ..nn import LayerNorm, Linear, Module, ModuleList
from ..nn.attention import _merge_heads, _split_heads, scaled_dot_product_attention
from ..tensor import Tensor, functional as F

__all__ = [
    "TPContext",
    "ColumnParallelLinear",
    "RowParallelLinear",
    "TPSelfAttention",
    "TPMLP",
    "TPTransformerBlock",
    "TPViTEncoder",
    "TPChannelCrossAttention",
]


class TPContext:
    """The (communicator, group) pair a TP layer communicates over.

    Virtual-clock hooks: ``block_seconds`` is the per-transformer-block
    forward compute a block charges onto the rank timeline (half after the
    attention region, half after the MLP region — TP collectives sit on the
    critical path between them, matching the analytic model's overlap-0
    treatment of TP); ``phase`` optionally stamps every forward collective a
    block issues (e.g. ``"tp"``) so measured traffic can be split by axis.
    Both are no-ops by default / without a clock.

    Issue-queue note: keep this context's ``phase`` out of a clock's
    ``eager_phases`` — every TP collective produces activations the next
    operation consumes immediately, so the region AllReduces must block
    (which is also why the overlap engine never discounts the TP axis).

    ``pool=True`` (the default) gives every region boundary a pooled
    ``out=`` buffer: each block's forward ``g`` AllReduce and backward ``f``
    AllReduce reuse one buffer per site across steps instead of allocating
    (see :mod:`repro.dist.pool`); ``pool=False`` is the allocating reference
    the parity property tests compare against.
    """

    def __init__(
        self,
        comm: Communicator,
        group: ProcessGroup | None = None,
        block_seconds: float = 0.0,
        phase: str | None = None,
        pool: bool = True,
    ) -> None:
        self.comm = comm
        self.group = group if group is not None else comm.world.default_group
        self.size = self.group.size
        self.index = self.group.rank_index(comm.rank)
        self.block_seconds = float(block_seconds)
        self.phase = phase
        self.pool = bool(pool)

    def region_keys(self, prefix: str) -> tuple[str | None, str | None]:
        """Pool keys for one ``f → … → g`` parallel region (or ``None``s)."""
        if not self.pool:
            return None, None
        return site_key(f"{prefix}.f"), site_key(f"{prefix}.g")

    def charge(self, seconds: float, phase: str = "forward") -> None:
        """Charge compute onto this rank's virtual timeline."""
        if seconds:
            self.comm.charge_compute(seconds, phase=phase)

    def scope(self):
        """Phase scope for this context's forward collectives (or a no-op)."""
        if self.phase is None:
            return contextlib.nullcontext()
        return self.comm.phase_scope(self.phase)

    def shard(self, n: int) -> slice:
        """This rank's contiguous slice of an axis of size *n*."""
        if n % self.size != 0:
            raise ValueError(f"axis size {n} not divisible by TP size {self.size}")
        step = n // self.size
        return slice(self.index * step, (self.index + 1) * step)


class ColumnParallelLinear(Module):
    """Linear with the *output* axis sharded: ``W → [in, out/tp]``.

    Input is replicated; output is this rank's column block.  ``f`` (grad
    AllReduce) is applied by the enclosing block at region entry, not here.
    """

    def __init__(
        self,
        ctx: TPContext,
        master_weight: np.ndarray,
        master_bias: np.ndarray | None = None,
    ) -> None:
        super().__init__()
        self.ctx = ctx
        in_f, out_f = master_weight.shape
        sl = ctx.shard(out_f)
        self.linear = Linear(
            in_f,
            out_f // ctx.size,
            weight=np.ascontiguousarray(master_weight[:, sl]),
            bias=master_bias is not None,
            bias_value=np.ascontiguousarray(master_bias[sl]) if master_bias is not None else None,
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.linear(x)


class RowParallelLinear(Module):
    """Linear with the *input* axis sharded: ``W → [in/tp, out]``.

    Input is this rank's block of the activation; output is a partial sum
    that the caller completes with :func:`reduce_from_group` (``g``).  The
    bias is added once, after the reduction, by the owning block.
    """

    def __init__(self, ctx: TPContext, master_weight: np.ndarray) -> None:
        super().__init__()
        self.ctx = ctx
        in_f, out_f = master_weight.shape
        sl = ctx.shard(in_f)
        self.linear = Linear(
            in_f // ctx.size,
            out_f,
            weight=np.ascontiguousarray(master_weight[sl, :]),
            bias=False,
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.linear(x)


class TPSelfAttention(Module):
    """Head-sharded multi-head self-attention.

    qkv is column-parallel with the columns grouped per head so each rank
    computes attention for ``heads/tp`` heads locally; the output projection
    is row-parallel, completed by an AllReduce in the owning block.
    """

    def __init__(
        self,
        ctx: TPContext,
        dim: int,
        heads: int,
        master_qkv_w: np.ndarray,
        master_qkv_b: np.ndarray,
        master_proj_w: np.ndarray,
        master_proj_b: np.ndarray,
    ) -> None:
        super().__init__()
        if heads % ctx.size != 0:
            raise ValueError(f"heads {heads} not divisible by TP size {ctx.size}")
        self.ctx = ctx
        self.dim = dim
        self.heads = heads
        self.local_heads = heads // ctx.size
        hd = dim // heads
        h0 = ctx.index * self.local_heads
        cols = slice(h0 * hd, (h0 + self.local_heads) * hd)
        # Take matching q, k and v column blocks for this rank's heads.
        local_dim = self.local_heads * hd
        qkv_w = np.concatenate(
            [
                master_qkv_w[:, cols],
                master_qkv_w[:, dim + cols.start : dim + cols.stop],
                master_qkv_w[:, 2 * dim + cols.start : 2 * dim + cols.stop],
            ],
            axis=1,
        )
        qkv_b = np.concatenate(
            [
                master_qkv_b[cols],
                master_qkv_b[dim + cols.start : dim + cols.stop],
                master_qkv_b[2 * dim + cols.start : 2 * dim + cols.stop],
            ]
        )
        self.qkv = Linear(dim, 3 * local_dim, weight=qkv_w, bias_value=qkv_b)
        self.proj = RowParallelLinear(ctx, master_proj_w)
        self.proj_bias = Tensor(np.asarray(master_proj_b, dtype=np.float32), requires_grad=True)
        self.local_dim = local_dim

    def forward(self, x: Tensor) -> Tensor:
        """Replicated [B, N, D] -> partial [B, N, D] (pre-reduction, no bias)."""
        qkv = self.qkv(x)
        q, k, v = qkv.split(3, axis=-1)
        q, k, v = (_split_heads(t, self.local_heads) for t in (q, k, v))
        out = scaled_dot_product_attention(q, k, v)
        return self.proj(_merge_heads(out))


class TPMLP(Module):
    """Column-parallel fc1 → GELU → row-parallel fc2 (bias added post-reduce)."""

    def __init__(
        self,
        ctx: TPContext,
        master_fc1_w: np.ndarray,
        master_fc1_b: np.ndarray,
        master_fc2_w: np.ndarray,
        master_fc2_b: np.ndarray,
    ) -> None:
        super().__init__()
        self.fc1 = ColumnParallelLinear(ctx, master_fc1_w, master_fc1_b)
        self.fc2 = RowParallelLinear(ctx, master_fc2_w)
        self.fc2_bias = Tensor(np.asarray(master_fc2_b, dtype=np.float32), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(F.gelu(self.fc1(x)))


class TPTransformerBlock(Module):
    """Pre-norm block with TP attention and TP MLP.

    LayerNorms and residuals are replicated; each parallel region is wrapped
    ``copy_to_group → … → reduce_from_group``.
    """

    def __init__(
        self,
        ctx: TPContext,
        dim: int,
        heads: int,
        masters: dict[str, np.ndarray],
    ) -> None:
        super().__init__()
        self.ctx = ctx
        self.norm1 = LayerNorm(dim)
        self.norm1.load_state_dict(
            {"weight": masters["norm1.weight"], "bias": masters["norm1.bias"]}
        )
        self.attn = TPSelfAttention(
            ctx,
            dim,
            heads,
            masters["attn.qkv.weight"],
            masters["attn.qkv.bias"],
            masters["attn.proj.weight"],
            masters["attn.proj.bias"],
        )
        self.norm2 = LayerNorm(dim)
        self.norm2.load_state_dict(
            {"weight": masters["norm2.weight"], "bias": masters["norm2.bias"]}
        )
        self.mlp = TPMLP(
            ctx,
            masters["mlp.fc1.weight"],
            masters["mlp.fc1.bias"],
            masters["mlp.fc2.weight"],
            masters["mlp.fc2.bias"],
        )
        self._attn_keys = ctx.region_keys("tp.block.attn")
        self._mlp_keys = ctx.region_keys("tp.block.mlp")

    def forward(self, x: Tensor) -> Tensor:
        ctx = self.ctx
        attn_f, attn_g = self._attn_keys
        mlp_f, mlp_g = self._mlp_keys
        with ctx.scope():
            h = copy_to_group(ctx.comm, self.norm1(x), ctx.group, pool_key=attn_f)
            attn = self.attn(h)
            ctx.charge(0.5 * ctx.block_seconds)
            h = (
                reduce_from_group(ctx.comm, attn, ctx.group, pool_key=attn_g)
                + self.attn.proj_bias
            )
            x = x + h
            h = copy_to_group(ctx.comm, self.norm2(x), ctx.group, pool_key=mlp_f)
            mlp = self.mlp(h)
            ctx.charge(0.5 * ctx.block_seconds)
            h = (
                reduce_from_group(ctx.comm, mlp, ctx.group, pool_key=mlp_g)
                + self.mlp.fc2_bias
            )
        return x + h


class TPViTEncoder(Module):
    """TP-sharded ViT encoder built from a serial encoder's state dict."""

    def __init__(
        self,
        ctx: TPContext,
        dim: int,
        depth: int,
        heads: int,
        master_state: dict[str, np.ndarray],
    ) -> None:
        super().__init__()
        self.ctx = ctx
        blocks = []
        for i in range(depth):
            prefix = f"blocks.{i}."
            masters = {
                k[len(prefix):]: v for k, v in master_state.items() if k.startswith(prefix)
            }
            blocks.append(TPTransformerBlock(ctx, dim, heads, masters))
        self.blocks = ModuleList(blocks)
        self.norm = LayerNorm(dim)
        self.norm.load_state_dict(
            {"weight": master_state["norm.weight"], "bias": master_state["norm.bias"]}
        )

    def forward(self, x: Tensor) -> Tensor:
        for block in self.blocks:
            x = block(x)
        return self.norm(x)


class TPChannelCrossAttention(Module):
    """Head-sharded channel cross-attention (paper applies TP to the channel
    aggregation module as well, §3.1 top diagram).

    Query tokens are replicated; q and kv projections are column-parallel by
    head; the output projection is row-parallel.  Input ``[B, C, N, D]`` must
    be replicated across the group; output ``[B, N, D]`` is replicated too.
    """

    def __init__(
        self,
        ctx: TPContext,
        dim: int,
        heads: int,
        master_query_tokens: np.ndarray,
        master_q_w: np.ndarray,
        master_q_b: np.ndarray,
        master_kv_w: np.ndarray,
        master_kv_b: np.ndarray,
        master_proj_w: np.ndarray,
        master_proj_b: np.ndarray,
        num_queries: int = 1,
    ) -> None:
        super().__init__()
        if heads % ctx.size != 0:
            raise ValueError(f"heads {heads} not divisible by TP size {ctx.size}")
        self.ctx = ctx
        self.dim = dim
        self.heads = heads
        self.num_queries = num_queries
        self.local_heads = heads // ctx.size
        hd = dim // heads
        h0 = ctx.index * self.local_heads
        cols = slice(h0 * hd, (h0 + self.local_heads) * hd)
        self.query_tokens = Tensor(
            np.asarray(master_query_tokens, dtype=np.float32), requires_grad=True
        )
        self.q_proj = Linear(
            dim,
            self.local_heads * hd,
            weight=np.ascontiguousarray(master_q_w[:, cols]),
            bias_value=np.ascontiguousarray(master_q_b[cols]),
        )
        kv_w = np.concatenate(
            [master_kv_w[:, cols], master_kv_w[:, dim + cols.start : dim + cols.stop]], axis=1
        )
        kv_b = np.concatenate(
            [master_kv_b[cols], master_kv_b[dim + cols.start : dim + cols.stop]]
        )
        self.kv_proj = Linear(dim, 2 * self.local_heads * hd, weight=kv_w, bias_value=kv_b)
        self.proj = RowParallelLinear(ctx, master_proj_w)
        self.proj_bias = Tensor(np.asarray(master_proj_b, dtype=np.float32), requires_grad=True)
        self._keys = ctx.region_keys("tp.chanxattn")

    def forward(self, x: Tensor) -> Tensor:
        """Replicated [B, C, N, D] -> replicated [B, N, D] (Q=1)."""
        ctx = self.ctx
        key_f, key_g = self._keys
        b, c, n, d = x.shape
        with ctx.scope():
            x = copy_to_group(ctx.comm, x, ctx.group, pool_key=key_f)
            tokens = x.transpose(0, 2, 1, 3).reshape(b * n, c, d)
            q_in = self.query_tokens.expand_dims(0).broadcast_to((b * n, self.num_queries, d))
            q = _split_heads(self.q_proj(q_in), self.local_heads)
            k, v = self.kv_proj(tokens).split(2, axis=-1)
            k = _split_heads(k, self.local_heads)
            v = _split_heads(v, self.local_heads)
            out = scaled_dot_product_attention(q, k, v)
            out = self.proj(_merge_heads(out))
            ctx.charge(ctx.block_seconds)
            out = reduce_from_group(ctx.comm, out, ctx.group, pool_key=key_g) + self.proj_bias
        out = out.reshape(b, n, self.num_queries, d).transpose(0, 2, 1, 3)
        if self.num_queries == 1:
            return out.squeeze(1)
        return out
