"""Pipeline parallelism (GPipe-style) — the remaining model-parallel axis.

The paper positions D-CHAG as compatible with "any of the current model
parallel methods for transformer" (§1).  TP and SP are implemented in
:mod:`repro.parallel.tp` / :mod:`repro.parallel.sp`; this module adds the
third: depth-wise pipelining.  Transformer blocks split into per-rank
stages; activations travel stage-to-stage with point-to-point sends, and a
GPipe schedule (all micro-batch forwards, then all backwards in reverse)
overlaps work across stages while gradients accumulate on each stage's
parameters.

Composition with D-CHAG: the channel front-end runs (distributed or serial)
on the *first* stage; later stages only ever see ``[B, N, D]`` activations,
so nothing else changes — the same argument the paper makes for TP and SP.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..dist import Communicator, ProcessGroup
from ..nn import Module
from ..tensor import Tensor

__all__ = ["PipelineStage", "split_blocks"]

_GRAD_TAG_OFFSET = 1 << 16


def split_blocks(blocks: Sequence[Module], n_stages: int) -> list[list[Module]]:
    """Partition *blocks* into contiguous, near-equal stages."""
    if n_stages < 1 or n_stages > len(blocks):
        raise ValueError(f"cannot split {len(blocks)} blocks into {n_stages} stages")
    base, rem = divmod(len(blocks), n_stages)
    out: list[list[Module]] = []
    idx = 0
    for s in range(n_stages):
        size = base + (1 if s < rem else 0)
        out.append(list(blocks[idx : idx + size]))
        idx += size
    return out


class PipelineStage:
    """One rank's stage plus the GPipe schedule driver.

    SPMD usage — every rank of the pipeline group runs::

        stage = PipelineStage(comm, group, my_module)
        losses = stage.train_step(micro_inputs, loss_fn)   # loss_fn on last stage

    ``micro_inputs`` (first stage only) is a list of micro-batch arrays (or
    Tensors); ``loss_fn`` (last stage only) maps the stage output to a scalar
    loss.  Gradients accumulate on the stage's parameters, scaled by
    ``1/n_micro`` so the result equals the full-batch mean-loss gradient.
    Returns the per-micro-batch loss values on the last stage, ``[]``
    elsewhere.
    """

    def __init__(
        self,
        comm: Communicator,
        group: ProcessGroup | None,
        module: Module,
    ) -> None:
        group = group if group is not None else comm.world.default_group
        self.comm = comm
        self.group = group
        self.module = module
        self.index = group.rank_index(comm.rank)
        self.n_stages = group.size
        self.is_first = self.index == 0
        self.is_last = self.index == self.n_stages - 1
        self._prev = None if self.is_first else group.ranks[self.index - 1]
        self._next = None if self.is_last else group.ranks[self.index + 1]
        self._step = 0

    # -- plumbing -----------------------------------------------------------
    def _tag(self, micro: int, grad: bool) -> int:
        tag = self._step * 4096 + micro
        return tag + _GRAD_TAG_OFFSET if grad else tag

    # -- schedule -------------------------------------------------------------
    def train_step(
        self,
        micro_inputs: Sequence[np.ndarray | Tensor] | None = None,
        loss_fn: Callable[[Tensor], Tensor] | None = None,
        n_micro: int | None = None,
    ) -> list[float]:
        if self.is_first:
            if not micro_inputs:
                raise ValueError("first stage needs micro_inputs")
            n_micro = len(micro_inputs)
        if self.is_last and loss_fn is None:
            raise ValueError("last stage needs a loss_fn")
        if n_micro is None:
            raise ValueError("intermediate stages must pass n_micro")

        recv_leaves: list[Tensor | None] = [None] * n_micro
        outputs: list[Tensor] = []
        losses: list[float] = []

        # ---- forward sweep (GPipe: all micro-batches) --------------------
        for m in range(n_micro):
            if self.is_first:
                raw = micro_inputs[m]
                x = raw if isinstance(raw, Tensor) else Tensor(np.asarray(raw, dtype=np.float32))
            else:
                data = self.comm.recv(src=self._prev, tag=self._tag(m, grad=False))
                x = Tensor(data, requires_grad=True)
                recv_leaves[m] = x
            out = self.module(x)
            outputs.append(out)
            if self.is_last:
                losses.append(loss_fn(out))
            else:
                self.comm.send(out.data, dst=self._next, tag=self._tag(m, grad=False))

        # ---- backward sweep (reverse order) -------------------------------
        scale = 1.0 / n_micro
        for m in reversed(range(n_micro)):
            if self.is_last:
                loss = losses[m]
                loss.backward(np.asarray(scale, dtype=loss.dtype))
            else:
                g = self.comm.recv(src=self._next, tag=self._tag(m, grad=True))
                outputs[m].backward(g)
            if not self.is_first:
                leaf = recv_leaves[m]
                assert leaf is not None and leaf.grad is not None
                self.comm.send(leaf.grad, dst=self._prev, tag=self._tag(m, grad=True))

        self._step += 1
        return [float(l.item()) for l in losses] if self.is_last else []
