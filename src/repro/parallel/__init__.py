"""Parallelism strategies: TP (baseline), distributed tokenization, FSDP, DP,
and the hybrid device mesh (paper §§3.1, 3.4, 4.3)."""

from .dist_token import DistributedTokenizer, channel_shard
from .dp import DataParallel, shard_batch
from .fsdp import FlatParamShard, FSDPModel, FSDPUnit
from .mesh import DeviceMesh
from .pipeline import PipelineStage, split_blocks
from .sp import (
    SPContext,
    SPSelfAttention,
    SPTransformerBlock,
    SPViTEncoder,
    all_to_all_heads_to_tokens,
    all_to_all_tokens_to_heads,
    gather_sequence,
    scatter_sequence,
)
from .tp import (
    ColumnParallelLinear,
    RowParallelLinear,
    TPChannelCrossAttention,
    TPContext,
    TPMLP,
    TPSelfAttention,
    TPTransformerBlock,
    TPViTEncoder,
)

__all__ = [
    "TPContext",
    "ColumnParallelLinear",
    "RowParallelLinear",
    "TPSelfAttention",
    "TPMLP",
    "TPTransformerBlock",
    "TPViTEncoder",
    "TPChannelCrossAttention",
    "DistributedTokenizer",
    "channel_shard",
    "FSDPModel",
    "FSDPUnit",
    "FlatParamShard",
    "DataParallel",
    "shard_batch",
    "DeviceMesh",
    "PipelineStage",
    "split_blocks",
    "SPContext",
    "SPSelfAttention",
    "SPTransformerBlock",
    "SPViTEncoder",
    "scatter_sequence",
    "gather_sequence",
    "all_to_all_tokens_to_heads",
    "all_to_all_heads_to_tokens",
]
