"""Fully-Sharded Data Parallel simulation (paper §3.4, Zhao et al. 2023).

Parameters are flattened per *unit* (typically one transformer block), padded
to a multiple of the group size, and each rank keeps only its ``1/n`` flat
shard as the trainable leaf.  At forward time a unit's shard is AllGathered
and unflattened into the module's parameter slots as *non-leaf* tensors whose
autograd history runs back through the gather — so the backward pass
ReduceScatters gradients onto the shards automatically, reproducing FSDP's
``AllGather (fwd) + AllGather/ReduceScatter (bwd)`` traffic and its memory
behaviour (full parameters only live while materialized; optimizer state is
sharded because the optimizer runs on the flat shards).
"""

from __future__ import annotations

import numpy as np

from ..dist import Communicator, ProcessGroup, all_gather_autograd, site_key
from ..nn import Module
from ..tensor import Tensor

__all__ = ["FlatParamShard", "FSDPUnit", "FSDPModel"]


class FlatParamShard:
    """One unit's parameters, flattened and sharded over the group."""

    def __init__(
        self,
        comm: Communicator,
        group: ProcessGroup,
        named_params: list[tuple[str, Tensor]],
        pool: bool = True,
    ) -> None:
        self.comm = comm
        self.group = group
        # Per-unit pool site: every step's gather reuses one flat buffer
        # (valid until the next materialize of this same unit).
        self.pool_key = site_key("fsdp.unit") if pool else None
        self.names = [n for n, _ in named_params]
        self.shapes = [p.data.shape for _, p in named_params]
        self.sizes = [p.data.size for _, p in named_params]
        self.total = int(sum(self.sizes))
        n = group.size
        self.padded = ((self.total + n - 1) // n) * n
        self.shard_size = self.padded // n
        flat = np.zeros(self.padded, dtype=np.float32)
        offset = 0
        for _, p in named_params:
            flat[offset : offset + p.data.size] = p.data.ravel()
            offset += p.data.size
        idx = group.rank_index(comm.rank)
        self.shard = Tensor(
            flat[idx * self.shard_size : (idx + 1) * self.shard_size].copy(),
            requires_grad=True,
        )

    def materialize(self) -> list[Tensor]:
        """AllGather the flat parameter and carve out per-parameter views.

        The returned tensors carry autograd history back to ``self.shard``;
        their gradients ReduceScatter (mean, the DDP/FSDP convention) onto
        ``shard.grad`` in backward.  The forward gather is stamped
        ``phase="fsdp_gather"`` so :mod:`repro.perf.overlap` can derive how
        much of it a prefetching implementation hides under forward compute
        (the backward collectives keep the runtime's ``"backward"`` stamp).
        """
        with self.comm.phase_scope("fsdp_gather"):
            full = all_gather_autograd(
                self.comm,
                self.shard,
                self.group,
                axis=0,
                reduce_op="mean",
                pool_key=self.pool_key,
            )
        tensors = []
        offset = 0
        for shape, size in zip(self.shapes, self.sizes):
            tensors.append(full[offset : offset + size].reshape(shape))
            offset += size
        return tensors

    def consolidated(self) -> np.ndarray:
        """AllGather the *values* only (no autograd), unpadded flat vector."""
        parts = self.comm.all_gather(self.shard.data, group=self.group)
        return np.concatenate(parts)[: self.total]

    def metadata(self) -> dict:
        """Layout description used by the elastic checkpoint manifest.

        Everything needed to re-split this unit's flat parameter at another
        world size: the parameter names/shapes/sizes (layout of the unpadded
        flat vector) plus the padded/shard geometry of the *saving* world.
        """
        return {
            "names": list(self.names),
            "shapes": [list(s) for s in self.shapes],
            "sizes": [int(s) for s in self.sizes],
            "total": int(self.total),
            "padded": int(self.padded),
            "shard_size": int(self.shard_size),
            "group_size": int(self.group.size),
        }


class FSDPUnit:
    """Wraps one module whose parameters are sharded together."""

    def __init__(
        self,
        comm: Communicator,
        group: ProcessGroup,
        module: Module,
        pool: bool = True,
    ) -> None:
        self.module = module
        self.named = list(module.named_parameters())
        self.flat = FlatParamShard(comm, group, self.named, pool=pool)
        # Parameter slots are refilled with gathered values at materialize().
        root = module._locate_root() if hasattr(module, "_locate_root") else module
        self._slots = [self._locate(root, name) for name, _ in self.named]

    @staticmethod
    def _locate(obj: Module, dotted: str) -> tuple[Module, str]:
        parts = dotted.split(".")
        for part in parts[:-1]:
            obj = obj._modules[part] if part in obj._modules else getattr(obj, part)
        return obj, parts[-1]

    def materialize(self) -> None:
        tensors = self.flat.materialize()
        for (owner, attr), t in zip(self._slots, tensors):
            owner._parameters[attr] = t
            object.__setattr__(owner, attr, t)


class FSDPModel(Module):
    """FSDP wrapper over a module, sharding each listed unit separately.

    ``units`` defaults to the module itself as a single unit.  Call pattern::

        model = FSDPModel(comm, group, net, units=[blk for blk in net.blocks])
        out = model(x)          # materializes all units, then runs net.forward
        loss.backward()          # grads land on model.shard_parameters()
        optimizer = AdamW(model.shard_parameters())

    ``unit_seconds`` is the virtual-clock compute-cost hook: each unit's
    forward compute (charged ``phase="forward"`` right after its gather,
    labelled ``unit{i}``) so rank timelines interleave gather/compute per
    unit the way real FSDP prefetching does — the input
    :mod:`repro.perf.overlap` derives the FSDP overlap fraction from.  A
    no-op without a clock.  Under an **issue-queue** clock
    (``VirtualClock(..., eager_phases={"fsdp_gather"})``) the per-unit
    gathers dispatch without stalling the rank, so unit *i*'s charged
    compute hides unit *i+1*'s in-flight gather — the perfect-prefetch
    schedule — and each gather's exposure is derived per unit
    (:func:`repro.perf.overlap.derive_bucket_exposures`).
    """

    def __init__(
        self,
        comm: Communicator,
        group: ProcessGroup | None,
        module: Module,
        units: list[Module] | None = None,
        unit_seconds: float = 0.0,
        pool: bool = True,
    ) -> None:
        super().__init__()
        group = group if group is not None else comm.world.default_group
        self.comm = comm
        self.group = group
        self.module = module
        self.unit_seconds = float(unit_seconds)
        unit_modules = units if units is not None else [module]
        # Any parameter not inside a listed unit forms a residual unit.
        listed: set[int] = set()
        self.units: list[FSDPUnit] = []
        for m in unit_modules:
            for _, p in m.named_parameters():
                listed.add(id(p))
            self.units.append(FSDPUnit(comm, group, m, pool=pool))
        residual = _ResidualUnit(module, listed)
        if residual.named:
            self.units.append(FSDPUnit(comm, group, residual, pool=pool))

    def shard_parameters(self) -> list[Tensor]:
        return [u.flat.shard for u in self.units]

    def shard_bytes(self) -> int:
        return sum(u.flat.shard.nbytes for u in self.units)

    def shard_metadata(self) -> list[dict]:
        """Per-unit flat-parameter layout (see :meth:`FlatParamShard.metadata`)."""
        return [u.flat.metadata() for u in self.units]

    def load_shard_data(self, shards: list[np.ndarray]) -> None:
        """Overwrite every unit's local flat shard in place (checkpoint restore).

        In-place so optimizers already holding the shard tensors keep
        working; shapes must match this world's shard geometry exactly
        (reshard the checkpoint first if it was saved at another world size).
        """
        if len(shards) != len(self.units):
            raise ValueError(
                f"got {len(shards)} shard arrays for {len(self.units)} FSDP units"
            )
        for u, arr in zip(self.units, shards):
            arr = np.asarray(arr, dtype=u.flat.shard.data.dtype)
            if arr.shape != u.flat.shard.data.shape:
                raise ValueError(
                    f"shard shape {arr.shape} does not match unit shard "
                    f"shape {u.flat.shard.data.shape}"
                )
            u.flat.shard.data[...] = arr

    def _materialize_all(self) -> None:
        for i, u in enumerate(self.units):
            u.materialize()
            if self.unit_seconds:
                self.comm.charge_compute(
                    self.unit_seconds, phase="forward", label=f"unit{i}"
                )

    def forward(self, *args, **kwargs):
        self._materialize_all()
        return self.module(*args, **kwargs)

    def loss(self, *args, **kwargs):
        """Materialize all units, then defer to the wrapped module's loss.

        Lets a ``Trainer`` drive an FSDP-wrapped model directly (with
        ``params=model.shard_parameters()``).
        """
        self._materialize_all()
        return self.module.loss(*args, **kwargs)

    def consolidated_state_dict(self) -> dict[str, np.ndarray]:
        """Gather full (unsharded) parameter values, keyed by unit-local names."""
        out: dict[str, np.ndarray] = {}
        for i, u in enumerate(self.units):
            flat = u.flat.consolidated()
            offset = 0
            for name, shape, size in zip(u.flat.names, u.flat.shapes, u.flat.sizes):
                out[f"unit{i}.{name}"] = flat[offset : offset + size].reshape(shape)
                offset += size
        return out


class _ResidualUnit(Module):
    """Pseudo-module exposing the parameters of *root* not covered by units."""

    def __init__(self, root: Module, covered: set[int]) -> None:
        super().__init__()
        self.named = [
            (name, p) for name, p in root.named_parameters() if id(p) not in covered
        ]
        self._root = root

    def named_parameters(self, prefix: str = ""):  # type: ignore[override]
        yield from ((prefix + n, p) for n, p in self.named)

    def _locate_root(self) -> Module:
        return self._root
