"""Elastic recovery cost: checkpoint cadence vs work lost at rank failure.

Sweeps the sharded-checkpoint cadence for a fixed scripted failure (kill one
rank mid-run) and measures what recovery actually costs:

* **steps lost** — optimizer steps after the last complete checkpoint that
  must be recomputed by the surviving world;
* **reshard bytes** — data moved to re-split the N-wide checkpoint's flat
  shards (params + AdamW moments) for the (N−1)-wide resume;
* **checkpoint bytes written** — the steady-state price of the cadence;
* **save seconds, blocking vs async** — wall-clock the training loop spent
  inside the checkpoint hook, once with synchronous writes and once through
  the double-buffered :class:`~repro.elastic.AsyncCheckpointWriter` at the
  *same* cadence.

The sweep exposes the classic trade-off: denser checkpoints shrink the
recompute window but multiply write volume, while the reshard cost is
cadence-independent (it only depends on model size and the new world size).
The async columns show the overlap win: staging a snapshot copy costs far
less than an fsynced npz write, so the critical-path cadence cost drops even
though the same bytes reach disk.  Every row re-verifies the semantic
invariant — the recovered trajectory (blocking *and* async) matches an
uninterrupted baseline.

``--store PATH`` persists the sweep to the sqlite SweepStore
(``kind="bench"``, ``name="elastic-recovery"``).
"""

import numpy as np

from figutils import print_table  # also makes src/ importable
from repro.elastic import ElasticSupervisor, FailurePlan, fsdp_training_segment
from repro.nn import MLP, Module
from repro.tensor import Tensor
from repro.train import TrainConfig

DIM, HID = 8, 16
WORLD, TOTAL = 4, 16
KILL_RANK, KILL_STEP = 2, 11
CADENCES = (1, 2, 4, 8)


class _Regressor(Module):
    def __init__(self, seed=9):
        super().__init__()
        self.net = MLP(DIM, HID, np.random.default_rng(seed))

    def loss(self, x, y):
        out = self.net(Tensor(x))
        return ((out - Tensor(y)) ** 2).mean()


def _batch(step):
    rng = np.random.default_rng(4000 + step)
    x = rng.standard_normal((4, DIM)).astype(np.float32)
    y = rng.standard_normal((4, DIM)).astype(np.float32)
    return x, y


def _run(root, cadence, plan, world=WORLD, async_save=False):
    config = TrainConfig(
        lr=5e-3, total_steps=TOTAL, warmup_steps=2, checkpoint_every=cadence
    )
    stats = {}
    segment = fsdp_training_segment(
        _Regressor, _batch, config, root, async_save=async_save, save_stats=stats
    )
    sup = ElasticSupervisor(segment, root, world, timeout=120)
    return sup.run(TOTAL, failure_plan=plan), stats


def _disk_bytes(root):
    return sum(p.stat().st_size for p in root.rglob("*.npz"))


def collect_all(tmp_root):
    from pathlib import Path

    tmp_root = Path(tmp_root)
    baseline, _ = _run(tmp_root / "baseline", max(CADENCES), None)
    rows = []
    for cadence in CADENCES:
        root = tmp_root / f"every{cadence}"
        res, stats = _run(root, cadence, FailurePlan.kill(KILL_RANK, KILL_STEP))
        aroot = tmp_root / f"async{cadence}"
        ares, astats = _run(
            aroot, cadence, FailurePlan.kill(KILL_RANK, KILL_STEP), async_save=True
        )
        (ev,) = res.recoveries
        rows.append(
            {
                "cadence": cadence,
                "resume_step": ev.resume_step,
                "steps_lost": ev.steps_lost,
                "reshard_bytes": ev.reshard_bytes,
                "ckpt_bytes": _disk_bytes(root),
                "save_s_blocking": stats["save_seconds"],
                "save_s_async": astats["save_seconds"],
                "trajectory_ok": bool(
                    np.allclose(res.losses, baseline.losses, rtol=1e-4, atol=1e-6)
                )
                and bool(
                    np.allclose(ares.losses, baseline.losses, rtol=1e-4, atol=1e-6)
                ),
            }
        )
    return rows


def print_results(rows) -> None:
    print_table(
        f"Elastic recovery cost (world {WORLD}->3, kill rank {KILL_RANK} "
        f"at step {KILL_STEP}/{TOTAL})",
        [
            "ckpt every", "resume step", "steps lost", "reshard KiB",
            "ckpt KiB written", "save ms blocking", "save ms async",
            "trajectory ok",
        ],
        [
            [
                r["cadence"],
                r["resume_step"],
                r["steps_lost"],
                f"{r['reshard_bytes'] / 1024:.1f}",
                f"{r['ckpt_bytes'] / 1024:.1f}",
                f"{r['save_s_blocking'] * 1e3:.1f}",
                f"{r['save_s_async'] * 1e3:.1f}",
                "yes" if r["trajectory_ok"] else "NO",
            ]
            for r in rows
        ],
        note="recovery cost = steps lost x per-step compute + reshard bytes; "
        "denser cadence trades write volume for a smaller recompute window; "
        "async saves move the fsynced write off the critical path",
    )


def assert_claims(rows) -> None:
    assert all(r["trajectory_ok"] for r in rows), "a recovered trajectory diverged"
    by_cadence = {r["cadence"]: r for r in rows}
    # Denser checkpoints never lose more steps, and cadence=1 loses none
    # (the step-11 failure hits right after the step-11 checkpoint landed).
    losses = [by_cadence[c]["steps_lost"] for c in sorted(by_cadence)]
    assert losses == sorted(losses), f"steps lost not monotone in cadence: {losses}"
    assert by_cadence[1]["steps_lost"] == 0
    assert by_cadence[8]["steps_lost"] == KILL_STEP - 8
    # Reshard volume is cadence-independent: same model, same shrink.
    reshards = {r["reshard_bytes"] for r in rows}
    assert len(reshards) == 1 and reshards.pop() > 0
    # Write volume grows with cadence density.
    assert by_cadence[1]["ckpt_bytes"] > by_cadence[8]["ckpt_bytes"]
    # Overlapped saves beat blocking saves at the same cadence.  Per-row
    # timings on a threaded tiny model are noisy; the sweep total is not.
    blocking = sum(r["save_s_blocking"] for r in rows)
    overlapped = sum(r["save_s_async"] for r in rows)
    assert overlapped < blocking, (
        f"async cadence cost {overlapped:.4f}s did not beat "
        f"blocking {blocking:.4f}s"
    )


def store_results(rows, store_path) -> None:
    """Persist one sweep as a ``bench`` run, one metric row per cell."""
    from repro.obs.store import SweepStore

    with SweepStore(store_path) as store:
        run_id = store.record_run(
            kind="bench",
            name="elastic-recovery",
            params={
                "world": WORLD, "total_steps": TOTAL,
                "kill_rank": KILL_RANK, "kill_step": KILL_STEP,
                "cadences": list(CADENCES),
            },
        )
        for r in rows:
            op = f"cadence={r['cadence']}"
            store.record_metric(run_id, "steps_lost", r["steps_lost"], op=op)
            store.record_metric(
                run_id, "reshard_bytes", r["reshard_bytes"], unit="B", op=op
            )
            store.record_metric(
                run_id, "ckpt_bytes", r["ckpt_bytes"], unit="B", op=op
            )
            store.record_metric(
                run_id, "save_seconds", r["save_s_blocking"], unit="s", op=op,
                source="blocking",
            )
            store.record_metric(
                run_id, "save_seconds", r["save_s_async"], unit="s", op=op,
                source="async",
            )
    print(f"persisted {len(rows)} cadences to {store_path}")


def test_elastic_recovery_print_and_benchmark(benchmark, tmp_path):
    rows = benchmark.pedantic(collect_all, args=(tmp_path,), rounds=1, iterations=1)
    print_results(rows)
    assert_claims(rows)


def main(argv=None) -> int:
    # Unlike most figures this bench grows --store, so it parses its own
    # flags instead of figutils.standalone_main's (--smoke only).
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="accepted for harness compatibility; runs are a single quick pass either way",
    )
    parser.add_argument("--store", default=None, help="persist to this sqlite store")
    opts = parser.parse_args(argv)
    rows = collect_all(tempfile.mkdtemp(prefix="bench_elastic_"))
    print_results(rows)
    try:
        assert_claims(rows)
    except AssertionError as exc:
        print(f"FAIL: elastic recovery violated a cost or trajectory claim ({exc})")
        return 1
    if opts.store:
        store_results(rows, opts.store)
    print("OK: elastic recovery preserves the trajectory at every cadence")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
