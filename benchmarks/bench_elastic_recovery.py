"""Elastic recovery cost: checkpoint cadence vs work lost at rank failure.

Sweeps the sharded-checkpoint cadence for a fixed scripted failure (kill one
rank mid-run) and measures what recovery actually costs:

* **steps lost** — optimizer steps after the last complete checkpoint that
  must be recomputed by the surviving world;
* **reshard bytes** — data moved to re-split the N-wide checkpoint's flat
  shards (params + AdamW moments) for the (N−1)-wide resume;
* **checkpoint bytes written** — the steady-state price of the cadence.

The sweep exposes the classic trade-off: denser checkpoints shrink the
recompute window but multiply write volume, while the reshard cost is
cadence-independent (it only depends on model size and the new world size).
Every row also re-verifies the semantic invariant — the recovered trajectory
matches an uninterrupted baseline.
"""

import numpy as np

from figutils import print_table, standalone_main  # also makes src/ importable
from repro.elastic import ElasticSupervisor, FailurePlan, fsdp_training_segment
from repro.nn import MLP, Module
from repro.tensor import Tensor
from repro.train import TrainConfig

DIM, HID = 8, 16
WORLD, TOTAL = 4, 16
KILL_RANK, KILL_STEP = 2, 11
CADENCES = (1, 2, 4, 8)


class _Regressor(Module):
    def __init__(self, seed=9):
        super().__init__()
        self.net = MLP(DIM, HID, np.random.default_rng(seed))

    def loss(self, x, y):
        out = self.net(Tensor(x))
        return ((out - Tensor(y)) ** 2).mean()


def _batch(step):
    rng = np.random.default_rng(4000 + step)
    x = rng.standard_normal((4, DIM)).astype(np.float32)
    y = rng.standard_normal((4, DIM)).astype(np.float32)
    return x, y


def _run(root, cadence, plan, world=WORLD):
    config = TrainConfig(
        lr=5e-3, total_steps=TOTAL, warmup_steps=2, checkpoint_every=cadence
    )
    segment = fsdp_training_segment(_Regressor, _batch, config, root)
    sup = ElasticSupervisor(segment, root, world, timeout=120)
    return sup.run(TOTAL, failure_plan=plan)


def _disk_bytes(root):
    return sum(p.stat().st_size for p in root.rglob("*.npz"))


def collect_all(tmp_root):
    from pathlib import Path

    tmp_root = Path(tmp_root)
    baseline = _run(tmp_root / "baseline", max(CADENCES), None)
    rows = []
    for cadence in CADENCES:
        root = tmp_root / f"every{cadence}"
        res = _run(root, cadence, FailurePlan.kill(KILL_RANK, KILL_STEP))
        (ev,) = res.recoveries
        rows.append(
            {
                "cadence": cadence,
                "resume_step": ev.resume_step,
                "steps_lost": ev.steps_lost,
                "reshard_bytes": ev.reshard_bytes,
                "ckpt_bytes": _disk_bytes(root),
                "trajectory_ok": bool(
                    np.allclose(res.losses, baseline.losses, rtol=1e-4, atol=1e-6)
                ),
            }
        )
    return rows


def print_results(rows) -> None:
    print_table(
        f"Elastic recovery cost (world {WORLD}->3, kill rank {KILL_RANK} "
        f"at step {KILL_STEP}/{TOTAL})",
        ["ckpt every", "resume step", "steps lost", "reshard KiB", "ckpt KiB written", "trajectory ok"],
        [
            [
                r["cadence"],
                r["resume_step"],
                r["steps_lost"],
                f"{r['reshard_bytes'] / 1024:.1f}",
                f"{r['ckpt_bytes'] / 1024:.1f}",
                "yes" if r["trajectory_ok"] else "NO",
            ]
            for r in rows
        ],
        note="recovery cost = steps lost x per-step compute + reshard bytes; "
        "denser cadence trades write volume for a smaller recompute window",
    )


def assert_claims(rows) -> None:
    assert all(r["trajectory_ok"] for r in rows), "a recovered trajectory diverged"
    by_cadence = {r["cadence"]: r for r in rows}
    # Denser checkpoints never lose more steps, and cadence=1 loses none
    # (the step-11 failure hits right after the step-11 checkpoint landed).
    losses = [by_cadence[c]["steps_lost"] for c in sorted(by_cadence)]
    assert losses == sorted(losses), f"steps lost not monotone in cadence: {losses}"
    assert by_cadence[1]["steps_lost"] == 0
    assert by_cadence[8]["steps_lost"] == KILL_STEP - 8
    # Reshard volume is cadence-independent: same model, same shrink.
    reshards = {r["reshard_bytes"] for r in rows}
    assert len(reshards) == 1 and reshards.pop() > 0
    # Write volume grows with cadence density.
    assert by_cadence[1]["ckpt_bytes"] > by_cadence[8]["ckpt_bytes"]


def test_elastic_recovery_print_and_benchmark(benchmark, tmp_path):
    rows = benchmark.pedantic(collect_all, args=(tmp_path,), rounds=1, iterations=1)
    print_results(rows)
    assert_claims(rows)


def _standalone_body() -> None:
    import tempfile

    rows = collect_all(tempfile.mkdtemp(prefix="bench_elastic_"))
    print_results(rows)
    assert_claims(rows)


if __name__ == "__main__":
    raise SystemExit(
        standalone_main(
            __doc__.splitlines()[0],
            _standalone_body,
            "elastic recovery preserves the trajectory at every cadence",
            "elastic recovery violated a cost or trajectory claim",
        )
    )
