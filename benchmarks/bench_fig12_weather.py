"""Figure 12 — weather forecasting: baseline vs D-CHAG-C and D-CHAG-L.

Paper: a 53M-parameter ClimaX-style forecaster on ERA5 (80 channels,
regridded to 5.625° = 32×64), batch 512; baseline on 1 GPU, D-CHAG on 4.
Training losses match almost exactly; test RMSE on Z500/T850/U10 is within
~1 %.

Here: synthetic ERA5-like data (real ERA5 is not downloadable offline), all
80 channels on the full 32×64 grid, proportionally smaller model and batch,
identical protocol.  Both D-CHAG variants (-C and -L) run, like the figure.
"""

import numpy as np
import pytest

from figutils import print_table
from repro.core import DCHAG, DCHAGConfig
from repro.data import ERA5Config, SyntheticERA5
from repro.dist import run_spmd_world
from repro.models import ChannelViT, WeatherForecaster, build_serial_forecaster
from repro.nn import ViTEncoder
from repro.train import TrainConfig, Trainer, eval_channel_rmse

C, H, W, P, D, HEADS, DEPTH = 80, 32, 64, 8, 48, 4, 2
BATCH = 8
STEPS = 16
LR = 2e-3


@pytest.fixture(scope="module")
def data():
    era = SyntheticERA5(ERA5Config(n_steps=BATCH + 6, seed=12))
    train_idx, test_idx = era.train_test_split(0.25)
    x, y, meta = era.batch(train_idx[:BATCH])
    xt, yt, mt = era.batch(test_idx[: BATCH // 2])
    return (x, y, meta), (xt, yt, mt)


def train_baseline(train, test):
    x, y, meta = train
    model = build_serial_forecaster(
        channels=C, image_hw=(H, W), patch=P, dim=D, depth=DEPTH, heads=HEADS,
        rng=np.random.default_rng(0),
    )
    tr = Trainer(model, TrainConfig(lr=LR, total_steps=STEPS, warmup_steps=2))
    losses = [tr.step(x, y, meta) for _ in range(STEPS)]
    xt, yt, mt = test
    rmse = eval_channel_rmse(model(xt, mt).data, yt)
    return losses, rmse


def train_dchag(comm, train, test, kind):
    x, y, meta = train
    cfg = DCHAGConfig(channels=C, patch=P, dim=D, heads=HEADS, kind=kind)
    frontend = DCHAG(comm, None, cfg, rng_seed=8)
    shared = np.random.default_rng(0)
    encoder = ViTEncoder(D, DEPTH, HEADS, shared)
    n_tokens = (H // P) * (W // P)
    backbone = ChannelViT(frontend, encoder, n_tokens, D, shared, meta_fields=2)
    model = WeatherForecaster(backbone, D, P, C, (H, W), shared)
    tr = Trainer(model, TrainConfig(lr=LR, total_steps=STEPS, warmup_steps=2))
    losses = [tr.step(x, y, meta) for _ in range(STEPS)]
    xt, yt, mt = test
    rmse = eval_channel_rmse(model(xt, mt).data, yt)
    return losses, rmse


@pytest.fixture(scope="module")
def runs(data):
    train, test = data
    baseline = train_baseline(train, test)
    dchag_l, _ = run_spmd_world(train_dchag, 4, train, test, "linear")
    dchag_c, _ = run_spmd_world(train_dchag, 4, train, test, "cross")
    return baseline, dchag_l[0], dchag_c[0]


def test_fig12_all_converge(runs):
    (b_loss, _), (l_loss, _), (c_loss, _) = runs
    for losses in (b_loss, l_loss, c_loss):
        assert losses[-1] < losses[0]


def test_fig12_training_losses_agree(runs):
    (b_loss, _), (l_loss, _), (c_loss, _) = runs
    for losses in (l_loss, c_loss):
        gap = abs(losses[-1] - b_loss[-1]) / b_loss[-1]
        assert gap < 0.35, f"final-loss gap {gap:.0%}"


def test_fig12_rmse_within_tolerance(runs):
    """Paper: test RMSE within ~1 % at full scale; at miniature scale we
    allow 20 % per variable."""
    (_, b_rmse), (_, l_rmse), (_, c_rmse) = runs
    for variant in (l_rmse, c_rmse):
        for var in ("z500", "t850", "u10"):
            rel = abs(variant[var] - b_rmse[var]) / b_rmse[var]
            assert rel < 0.20, f"{var}: {rel:.0%}"


def test_fig12_print_and_benchmark(runs, benchmark):
    (b_loss, b_rmse), (l_loss, l_rmse), (c_loss, c_rmse) = runs

    def summarize():
        return [
            ["final train loss", f"{b_loss[-1]:.4f}", f"{l_loss[-1]:.4f}", f"{c_loss[-1]:.4f}"],
            *[
                [f"test RMSE {v}", f"{b_rmse[v]:.4f}", f"{l_rmse[v]:.4f}", f"{c_rmse[v]:.4f}"]
                for v in ("z500", "t850", "u10")
            ],
        ]

    rows = benchmark.pedantic(summarize, rounds=1, iterations=1)
    print_table(
        "Fig. 12 — weather forecasting (baseline vs D-CHAG on 4 ranks)",
        ["metric", "baseline", "D-CHAG-L", "D-CHAG-C"],
        rows,
        note="paper: training loss matches almost exactly; test RMSE within ~1%",
    )
