"""Long-sequence configuration search with sequence parallelism enabled.

The Ulysses argument in one sweep: at long sequence length the tensor-
parallel wrapper moves the *whole* activation through all-gather /
reduce-scatter pairs every block (per-link wire ~ O(N)), while sequence
parallelism exchanges only each rank's token shard through all-to-alls
(per-link wire ~ O(N/sp)).  At ViT-224 sequence lengths TP's better
compute split wins; stretch the image to 768 x 1536 (N = 4,608 tokens)
and the wire term dominates — the search flips.

This benchmark runs the same 7B / 500 channels / 1,024 GCDs / global
batch 4,096 sweep as ``bench_sec62_reranked_search.py`` but on the
long-sequence model with ``max_sp=8``, and pins (with
``tests/test_autotune.py``):

1. an ``sp > 1`` plan tops the ranking — sequence parallelism is not just
   enumerable but *load-bearing* at long N;
2. the best sp=1 candidate of the same sweep matches the winner of a
   ``max_sp=1`` sweep — turning sp on re-ranks, it does not perturb the
   sp=1 candidates themselves;
3. the wire-byte physics behind the flip: per-step SP all-to-all bytes at
   sp=4 are a fraction of TP's all-gather/reduce-scatter bytes at tp=4.
"""

import functools

from figutils import print_table, standalone_main
from repro.perf import (
    CostModel,
    ParallelPlan,
    Workload,
    frontier,
    named_model,
    search_configurations,
    step_comm_schedule,
)

MACHINE = frontier()
MODEL = named_model("7B").with_image(768, 1536)  # N = 4,608 tokens
CHANNELS = 500
GPUS = 1024
GLOBAL_BATCH = 4096
MAX_SP = 8
TOP = 10


def compute_rankings():
    with_sp = search_configurations(
        MODEL, CHANNELS, GPUS, MACHINE, GLOBAL_BATCH, max_sp=MAX_SP
    )
    sp1_only = search_configurations(MODEL, CHANNELS, GPUS, MACHINE, GLOBAL_BATCH)
    return with_sp, sp1_only


_rankings = functools.lru_cache(maxsize=1)(compute_rankings)


def _assert_sp_wins(with_sp, sp1_only):
    best = with_sp[0]
    assert best.plan.sp > 1, f"expected an sp>1 winner, got {best.plan.label}"
    assert best.total_tflops > sp1_only[0].total_tflops
    # Turning sp on must not perturb the sp=1 candidates themselves: the
    # best sp=1 plan inside the joint sweep is the max_sp=1 winner.
    best_sp1 = next(t for t in with_sp if t.plan.sp == 1)
    assert best_sp1.plan.label == sp1_only[0].plan.label


def _wire_per_axis(plan: ParallelPlan) -> dict[str, int]:
    workload = Workload(channels=CHANNELS, batch=GLOBAL_BATCH // plan.dp)
    events = step_comm_schedule(MODEL, workload, plan)
    cost = CostModel(MACHINE)
    wire: dict[str, int] = {}
    for ev in events:
        n = {"tp": plan.tp, "gather": plan.tp, "sp": plan.sp,
             "sp_gather": plan.sp, "sp_scatter": plan.sp}.get(ev.axis, plan.dp)
        wire[ev.axis] = wire.get(ev.axis, 0) + cost.wire_bytes(
            ev.op, ev.payload_bytes, n
        ) * ev.count
    return wire


def _assert_wire_physics():
    """SP moves a fraction of TP's per-step block-collective bytes."""
    tp4 = _wire_per_axis(ParallelPlan("tp", tp=4, fsdp=1, dp=256))
    sp4 = _wire_per_axis(ParallelPlan("tp", tp=1, sp=4, fsdp=1, dp=256))
    assert sp4["sp"] < tp4["tp"] / 2, (
        f"sp4 a2a wire {sp4['sp']} not well under tp4 collective wire {tp4['tp']}"
    )


def _print_ranking(with_sp, sp1_only) -> None:
    table = [
        [
            i,
            t.plan.label,
            t.plan.tp,
            t.plan.sp,
            t.plan.fsdp,
            t.plan.dp,
            f"{t.total_tflops:,.0f}",
        ]
        for i, t in enumerate(with_sp[:TOP])
    ]
    print_table(
        "long-sequence search, sp enabled (7B @ 768x1536 / 500 ch / 1,024 GCDs)",
        ["#", "plan", "tp", "sp", "fsdp", "dp", "TFLOP/s"],
        table,
        note=f"best sp=1 plan: {sp1_only[0].plan.label} "
        f"({sp1_only[0].total_tflops:,.0f} TFLOP/s) — the all-to-all's "
        "O(N/sp) per-link wire beats TP's O(N) gathers at N=4,608",
    )


def test_longseq_sp_plan_wins(benchmark):
    with_sp, sp1_only = benchmark(compute_rankings)
    _assert_sp_wins(with_sp, sp1_only)


def test_longseq_wire_physics():
    _assert_wire_physics()


def _body():
    with_sp, sp1_only = _rankings()
    _assert_sp_wins(with_sp, sp1_only)
    _assert_wire_physics()
    _print_ranking(with_sp, sp1_only)


if __name__ == "__main__":
    raise SystemExit(
        standalone_main(
            __doc__,
            _body,
            "sp>1 plan tops the long-sequence ranking; wire physics confirmed",
            "long-sequence sp search claims failed",
        )
    )
