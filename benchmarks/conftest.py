import sys
from pathlib import Path

# Make figutils importable regardless of pytest rootdir configuration.
sys.path.insert(0, str(Path(__file__).parent))
