"""Figure 11 — MAE on hyperspectral plant images: baseline vs D-CHAG-L.

Paper: a 40M-parameter masked autoencoder on 494 APPL Poplar images with 500
spectral channels, batch 8; baseline on one GPU, D-CHAG-L on two; training
losses agree, and the D-CHAG model reconstructs the (pseudo-RGB) image.

Here: the same experiment scaled for NumPy — synthetic APPL-like data (the
real set is not distributable), 32 channels, a proportionally smaller model,
identical protocol (hyperparameters tuned for neither, shared by both runs).
"""

import numpy as np
import pytest

from figutils import print_table
from repro.core import DCHAG, DCHAGConfig
from repro.data import HyperspectralConfig, HyperspectralDataset, pseudo_rgb
from repro.dist import run_spmd_world
from repro.models import MAEModel, build_serial_mae
from repro.nn import ViTEncoder
from repro.train import TrainConfig, Trainer

C, IMG, P, D, HEADS, DEPTH = 32, 16, 4, 48, 4, 2
BATCH = 8          # the paper's batch size
STEPS = 20
LR = 3e-3


def _data():
    ds = HyperspectralDataset(
        HyperspectralConfig(channels=C, height=IMG, width=IMG, n_images=16, seed=9)
    )
    return ds, ds.batch(range(BATCH))


def train_baseline(batch):
    model = build_serial_mae(
        channels=C, image=IMG, patch=P, dim=D, depth=DEPTH, heads=HEADS,
        rng=np.random.default_rng(0), mask_ratio=0.75, agg="cross",
    )
    tr = Trainer(model, TrainConfig(lr=LR, total_steps=STEPS, warmup_steps=3))
    return [tr.step(batch, np.random.default_rng(5000 + i)) for i in range(STEPS)]


def train_dchag(comm, batch):
    cfg = DCHAGConfig(channels=C, patch=P, dim=D, heads=HEADS, kind="linear")
    frontend = DCHAG(comm, None, cfg, rng_seed=3)
    shared = np.random.default_rng(0)
    model = MAEModel(
        frontend, ViTEncoder(D, DEPTH, HEADS, shared),
        num_tokens=(IMG // P) ** 2, dim=D, patch=P, out_channels=C,
        rng=shared, mask_ratio=0.75, decoder_depth=2,
    )
    tr = Trainer(model, TrainConfig(lr=LR, total_steps=STEPS, warmup_steps=3))
    losses = [tr.step(batch, np.random.default_rng(5000 + i)) for i in range(STEPS)]
    recon = model.reconstruct(batch[:1], np.random.default_rng(0))
    return losses, recon


@pytest.fixture(scope="module")
def runs():
    ds, batch = _data()
    baseline = train_baseline(batch)
    results, world = run_spmd_world(train_dchag, 2, batch)
    return ds, batch, baseline, results, world


def test_fig11_losses_agree(runs):
    _, _, baseline, results, _ = runs
    dchag = results[0][0]
    gap = abs(dchag[-1] - baseline[-1]) / baseline[-1]
    assert gap < 0.35, f"final-loss gap {gap:.0%} (paper: curves overlap)"


def test_fig11_reconstruction_produces_valid_image(runs):
    ds, batch, _, results, _ = runs
    recon = results[0][1]
    assert recon.shape == (1, C, IMG, IMG)
    assert np.isfinite(recon).all()
    rgb = pseudo_rgb(recon[0], ds.library)
    assert rgb.shape == (IMG, IMG, 3)


def test_fig11_no_backward_communication(runs):
    *_, world = runs
    assert world.traffic.count(phase="backward") == 0


def test_fig11_print_and_benchmark(runs, benchmark):
    ds, batch, baseline, results, _ = runs
    dchag = results[0][0]

    def summarize():
        return [
            (i, baseline[i], dchag[i])
            for i in range(0, STEPS, max(1, STEPS // 10))
        ] + [(STEPS - 1, baseline[-1], dchag[-1])]

    rows = benchmark.pedantic(summarize, rounds=1, iterations=1)
    print_table(
        "Fig. 11 — MAE training loss (baseline 1 rank vs D-CHAG-L 2 ranks)",
        ["iteration", "baseline", "D-CHAG-L"],
        [[i, f"{a:.4f}", f"{b:.4f}"] for i, a, b in rows],
        note="paper: 'good agreement in the training loss between the "
        "single-GPU implementation and the D-CHAG method'",
    )
