"""Ablation — parallel-strategy composition and cost-model sensitivity.

Checks the design choices DESIGN.md calls out:

* SP is a valid alternative model-parallel axis for the D-CHAG front-end
  (§3.5) — and moves different traffic than TP;
* the hybrid mesh places TP inside a node and DP across (§6.3's locality
  argument) — quantified via the α–β model;
* sensitivity: the Fig. 16 ">2×" conclusion survives halving/doubling the
  batch-efficiency knee (``BATCH_EFF_HALF``) and the compute efficiency.
"""

import numpy as np
import pytest

from figutils import print_table
from repro.dist import run_spmd_world
from repro.nn import ViTEncoder
from repro.parallel import SPContext, SPViTEncoder, TPContext, TPViTEncoder, scatter_sequence
from repro.perf import (
    MachineSpec,
    ParallelPlan,
    collective_time,
    frontier,
    named_model,
)
from repro.perf.throughput import global_batch_throughput
from repro.tensor import Tensor

D, DEPTH, HEADS, B, N = 32, 2, 4, 2, 8
MACHINE = frontier()


def measure_traffic(kind: str, world: int = 2):
    serial = ViTEncoder(D, DEPTH, HEADS, np.random.default_rng(42))
    state = serial.state_dict()
    x = np.random.default_rng(1).standard_normal((B, N, D)).astype(np.float32)

    def fn(comm):
        if kind == "tp":
            enc = TPViTEncoder(TPContext(comm), D, DEPTH, HEADS, state)
            out = enc(Tensor(x))
        else:
            ctx = SPContext(comm)
            enc = SPViTEncoder(ctx, D, DEPTH, HEADS, state)
            out = enc(scatter_sequence(ctx, Tensor(x)))
        (out * out).mean().backward()

    _, w = run_spmd_world(fn, world)
    return w.traffic


class TestSPvsTP:
    def test_tp_uses_allreduce_sp_uses_alltoall(self):
        tp = measure_traffic("tp").ops_histogram()
        sp = measure_traffic("sp").ops_histogram()
        assert set(tp) == {"all_reduce"}
        assert set(sp) == {"all_to_all"}

    def test_sp_moves_fewer_bytes_per_rank(self):
        """Ulysses all-to-alls move 1/sp of the activation where TP
        all-reduces move ~2× of it."""
        tp = measure_traffic("tp").wire_bytes(rank=0)
        sp = measure_traffic("sp").wire_bytes(rank=0)
        assert sp < tp


class TestLocality:
    def test_intra_node_collective_cheaper(self):
        payload = 64 << 20
        for op in ("all_reduce", "all_gather"):
            fast = collective_time(op, payload, 8, MACHINE, intra_node=True)
            slow = collective_time(op, payload, 8, MACHINE, intra_node=False)
            assert slow > 3 * fast  # IF 50 GB/s vs 12.5 GB/s per GCD

    def test_hybrid_prefers_intra_node_tp(self):
        """A TP16 replica (2 nodes) pays inter-node prices; TP8 stays on
        Infinity Fabric — the §6.3 placement argument."""
        from repro.perf import Workload, estimate_step_comm

        model = named_model("7B")
        w = Workload(500, 8)
        t8 = estimate_step_comm(model, w, ParallelPlan("tp", tp=8), MACHINE).tp_time
        t16 = estimate_step_comm(model, w, ParallelPlan("tp", tp=16), MACHINE).tp_time
        assert t16 > 2.5 * t8


class TestModelSensitivity:
    BASELINE = ParallelPlan("tp", tp=16, dp=64)
    HYBRID = ParallelPlan("dchag", tp=8, dchag_kind="linear", dp=128)

    def _gain(self, machine: MachineSpec, global_batch: int = 2048) -> float:
        model = named_model("7B")
        base = global_batch_throughput(model, 500, self.BASELINE, machine, global_batch)
        hybrid = global_batch_throughput(model, 500, self.HYBRID, machine, global_batch)
        return hybrid / base - 1.0

    def test_fig16_conclusion_stable_under_efficiency(self):
        for eff in (0.15, 0.3, 0.5):
            assert self._gain(MACHINE.with_efficiency(eff)) > 1.0, eff

    def test_fig16_conclusion_stable_under_batch_knee(self):
        import repro.perf.throughput as tp_mod

        original = tp_mod.BATCH_EFF_HALF
        try:
            for knee in (2.0, 4.0, 8.0):
                tp_mod.BATCH_EFF_HALF = knee
                assert self._gain(MACHINE) > 1.0, knee
        finally:
            tp_mod.BATCH_EFF_HALF = original

    def test_gain_shrinks_with_faster_interconnect(self):
        """If Slingshot were as fast as Infinity Fabric, the baseline's
        cross-node penalty — part of D-CHAG's edge — shrinks."""
        from dataclasses import replace

        fast_net = replace(MACHINE, inter_node_bw_per_node=50e9 * 8)
        assert self._gain(fast_net) < self._gain(MACHINE)


def test_ablation_parallelism_print_and_benchmark(benchmark):
    def collect():
        tp = measure_traffic("tp")
        sp = measure_traffic("sp")
        return [
            ["TP", str(tp.ops_histogram()), tp.wire_bytes(rank=0)],
            ["SP (Ulysses)", str(sp.ops_histogram()), sp.wire_bytes(rank=0)],
        ]

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_table(
        "Ablation — TP vs SP traffic for the same encoder (2 ranks)",
        ["strategy", "collectives", "wire bytes/rank"],
        rows,
        note="§3.5: D-CHAG composes with either axis; SP trades AllReduce "
        "for lighter all-to-alls",
    )
