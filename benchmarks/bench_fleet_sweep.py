"""Fleet-scale autotuner sweep priced entirely by vectorized replay.

Ranks every feasible configuration of a 7B-class model across a whole
fleet of GPU budgets — ``len(FLEET_BUDGETS)`` (total_gpus, global_batch)
points, >= 1000 candidate plans in total — through
:func:`repro.perf.autotune.sweep_replay`: at most a handful of threaded
stand-in worlds are ever spun up (one per schedule shape; the run asserts
``captured_worlds <= 4``), each captured schedule is lowered once by
:class:`repro.perf.schedule.ReplayProgram`, and every distinct
(placement, compute-scale) variant is priced as one lane of a vectorized
replay.  The scalar yardstick — per-budget
``search_configurations(..., replay=True)`` calls, which re-capture and
re-interpret per call — is timed once and recorded as
``speedup_vs_scalar``; both paths produce identical rankings (pinned in
``tests/test_schedule_replay.py``).

The grid keeps the channel count odd on purpose: D-CHAG requires
``channels % tp == 0``, so every candidate collapses to ``tp=1`` and the
shrunk stand-in shapes stay within the <= 4 captured-world budget while the
(fsdp, dp) factorizations still fan out to 1000+ candidates.

Standalone runs merge a ``fleet_sweep`` entry into ``BENCH_runtime.json``
(and optionally a sweep store); ``bench_runtime_speed.py`` also times this
benchmark as part of the tracked suite.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import time
from pathlib import Path

from repro.perf import frontier, named_model, search_configurations, sweep_replay

MACHINE = frontier()
FLEET_MODEL_NAME = "7B"
#: Odd on purpose — forces tp=1 under D-CHAG's channels % tp == 0 rule,
#: capping the sweep at <= 4 captured stand-in worlds (see module docstring).
FLEET_CHANNELS = 495
FLEET_STRATEGIES = ("dchag",)
MAX_WORLDS = 4
MIN_CANDIDATES = 1000


def _budget_grid() -> list[tuple[int, int]]:
    """8 .. 12,288 GPUs x {1,2,3,4,6,8,12,16} samples/GPU: 168 budgets."""
    gpus: set[int] = set()
    for e in range(3, 14):
        gpus.add(2**e)
        if e >= 4:
            gpus.add(3 * 2**e // 2)
    return [(g, g * m) for g in sorted(gpus) for m in (1, 2, 3, 4, 6, 8, 12, 16)]


FLEET_BUDGETS = _budget_grid()


def fleet_sweep_once() -> "object":
    """One full sweep (the timed unit); asserts the sweep's shape contract."""
    sweep = sweep_replay(
        named_model(FLEET_MODEL_NAME), FLEET_CHANNELS, MACHINE, FLEET_BUDGETS,
        strategies=FLEET_STRATEGIES,
    )
    assert sweep.candidates >= MIN_CANDIDATES, (
        f"fleet sweep shrank: {sweep.candidates} candidates < {MIN_CANDIDATES}"
    )
    assert sweep.captured_worlds <= MAX_WORLDS, (
        f"fleet sweep over-captured: {sweep.captured_worlds} worlds > {MAX_WORLDS}"
    )
    return sweep


def scalar_baseline_seconds() -> float:
    """Today's path, timed once: one ``search_configurations(replay=True)``
    call per budget, each re-capturing its own stand-in worlds."""
    model = named_model(FLEET_MODEL_NAME)
    t0 = time.perf_counter()
    for total_gpus, global_batch in FLEET_BUDGETS:
        search_configurations(
            model, FLEET_CHANNELS, total_gpus, MACHINE, global_batch,
            strategies=FLEET_STRATEGIES, replay=True,
        )
    return time.perf_counter() - t0


def run_benchmark(smoke: bool) -> dict:
    """Timed sweep + one scalar yardstick; the ``fleet_sweep`` result row."""
    repeats = 3 if smoke else 7
    sweep = fleet_sweep_once()  # warmup (and contract check)
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fleet_sweep_once()
        samples.append(time.perf_counter() - t0)
    result = {
        "seconds": statistics.median(samples),
        "min_seconds": min(samples),
        "repeats": repeats,
        "budgets": len(FLEET_BUDGETS),
        "candidates": sweep.candidates,
        "captured_worlds": sweep.captured_worlds,
        "replay_lanes": sweep.lanes,
    }
    scalar = scalar_baseline_seconds()
    result["scalar_seconds"] = scalar
    result["speedup_vs_scalar"] = round(scalar / result["seconds"], 2)
    print(
        f"fleet_sweep        {result['seconds'] * 1e3:9.2f} ms  "
        f"({sweep.candidates} candidates, {sweep.captured_worlds} worlds, "
        f"{sweep.lanes} lanes; scalar path {scalar * 1e3:.2f} ms -> "
        f"{result['speedup_vs_scalar']:.2f}x)"
    )
    print_winners(sweep)
    return result


def print_winners(sweep, every: int = 32) -> None:
    """Per-budget winners with all four plan axes (tp/sp/fsdp/dp) spelled
    out; one row every ``every`` budgets keeps the table skimmable."""
    print(f"{'gpus':>6} {'batch':>6} {'tp':>3} {'sp':>3} {'fsdp':>5} "
          f"{'dp':>5}  {'TFLOP/s':>9}  label")
    for i, ((gpus, batch), ranked) in enumerate(sweep.rankings):
        if i % every and (gpus, batch) != sweep.rankings[-1][0]:
            continue
        if not ranked:
            continue
        top = ranked[0]
        p = top.plan
        print(f"{gpus:>6} {batch:>6} {p.tp:>3} {p.sp:>3} {p.fsdp:>5} "
              f"{p.dp:>5}  {top.total_tflops:>9.1f}  {p.label}")


def merge_into_trajectory(out: Path, result: dict, baseline: bool) -> None:
    """Merge this run's ``fleet_sweep`` row into the tracked JSON snapshot
    without touching the other benchmarks' numbers."""
    doc = json.loads(out.read_text()) if out.exists() else {
        "suite": "bench_runtime_speed", "baseline": {}, "current": {}, "speedup": {},
    }
    doc.setdefault("current", {})["fleet_sweep"] = result
    base = doc.setdefault("baseline", {})
    if baseline or "fleet_sweep" not in base:
        base["fleet_sweep"] = result
    if base["fleet_sweep"].get("seconds", 0) > 0 and result["seconds"] > 0:
        doc.setdefault("speedup", {})["fleet_sweep"] = round(
            base["fleet_sweep"]["seconds"] / result["seconds"], 2
        )
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"merged fleet_sweep into {out}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="fewer repeats (CI)")
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_runtime.json"),
        help="tracked trajectory JSON to merge the fleet_sweep entry into",
    )
    parser.add_argument("--baseline", action="store_true",
                        help="record this run as the fleet_sweep baseline too")
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="also persist the sweep rankings into a repro.obs sweep store")
    args = parser.parse_args(argv)

    result = run_benchmark(args.smoke)
    merge_into_trajectory(Path(args.out), result, args.baseline)

    if args.store:
        from repro.obs.store import SweepStore

        # Record the rankings themselves (one search run per budget) plus
        # the benchmark timings as a bench run.
        sweep_replay(
            named_model(FLEET_MODEL_NAME), FLEET_CHANNELS, MACHINE, FLEET_BUDGETS,
            strategies=FLEET_STRATEGIES, store=args.store,
            store_name=f"fleet-{FLEET_MODEL_NAME}-ch{FLEET_CHANNELS}",
        )
        with SweepStore(args.store) as store:
            run_id = store.record_run(
                "bench", "fleet_sweep", machine=MACHINE.name,
                host=platform.platform(), params={"smoke": args.smoke},
            )
            for key in ("seconds", "min_seconds", "scalar_seconds"):
                store.record_metric(run_id, f"fleet_sweep/{key}", result[key],
                                    unit="s", source="bench")
            for key in ("candidates", "captured_worlds", "replay_lanes",
                        "speedup_vs_scalar"):
                store.record_metric(run_id, f"fleet_sweep/{key}", result[key],
                                    source="bench")
        print(f"stored fleet sweep rankings and timings in {args.store}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
