"""Figure 9 — D-CHAG gains vs TP-only across partial-aggregation configs.

Paper, 1.7B model: Tree0/2/4/8 × {-C cross-attention, -L linear} at 512
channels (TP2) and 1024 channels (TP8).  Quoted: Tree0-C ≈ baseline (512ch)
but +60 % at 1024ch; deeper -C trees help at 512ch and stay flat at 1024ch;
-L improves even shallow, and Tree0-L is the best configuration overall —
the variant used for the rest of the paper.
"""

import math

from figutils import fmt_pct, print_table
from repro.core import plan_channel_stage
from repro.perf import (
    FIGURE_BATCH,
    ParallelPlan,
    Workload,
    frontier,
    throughput_gain,
)
from repro.perf import named_model

MACHINE = frontier()
MODEL = named_model("1.7B")
B = FIGURE_BATCH["fig9"]
CASES = ((512, 2), (1024, 8))
FANOUTS = (0, 2, 4, 8)
KINDS = ("cross", "linear")


def compute_fig9():
    rows = []
    for ch, tp in CASES:
        base = ParallelPlan("tp", tp=tp)
        for kind in KINDS:
            for fanout in FANOUTS:
                plan = ParallelPlan("dchag", tp=tp, dchag_kind=kind, dchag_fanout=fanout)
                rows.append(
                    {
                        "channels": ch,
                        "tp": tp,
                        "kind": kind,
                        "fanout": fanout,
                        "gain": throughput_gain(MODEL, ch, plan, base, MACHINE),
                    }
                )
    return rows


def test_fig9_cross_1024_large_gain():
    """Paper: Tree0-C '+60% improvement for 1024 channels'."""
    rows = {(r["channels"], r["kind"], r["fanout"]): r["gain"] for r in compute_fig9()}
    assert rows[(1024, "cross", 0)] > 0.4


def test_fig9_cross_gains_flat_at_1024():
    """'performance remains mostly constant for 1024-channel data'."""
    rows = {(r["channels"], r["kind"], r["fanout"]): r["gain"] for r in compute_fig9()}
    gains = [rows[(1024, "cross", f)] for f in FANOUTS]
    assert max(gains) - min(gains) < 0.15


def test_fig9_deeper_cross_helps_at_512():
    """'As we deepen the hierarchical structure, we observe benefits even
    with 512-channel data.'"""
    rows = {(r["channels"], r["kind"], r["fanout"]): r["gain"] for r in compute_fig9()}
    assert rows[(512, "cross", 4)] > rows[(512, "cross", 0)]


def test_fig9_linear_beats_cross_everywhere():
    rows = compute_fig9()
    by_key = {(r["channels"], r["kind"], r["fanout"]): r["gain"] for r in rows}
    for ch, _ in CASES:
        for f in FANOUTS:
            assert by_key[(ch, "linear", f)] > by_key[(ch, "cross", f)]


def test_fig9_tree0_linear_is_best_like_paper():
    """'the best performance is achieved with D-CHA ViT-L-Tree0' — checked
    via the planner and via the raw sweep."""
    rows = compute_fig9()
    for ch, tp in CASES:
        subset = [r for r in rows if r["channels"] == ch and r["kind"] == "linear"]
        best = max(subset, key=lambda r: r["gain"])
        assert best["fanout"] == 0
        choice = plan_channel_stage(MODEL, Workload(ch, B), MACHINE, tp=tp)
        assert choice.plan.dchag_kind == "linear" and choice.plan.dchag_fanout == 0


def test_fig9_print_and_benchmark(benchmark):
    rows = benchmark(compute_fig9)
    table = [
        [r["channels"], r["tp"], f"{r['kind']}-Tree{r['fanout']}", fmt_pct(r["gain"])]
        for r in rows
        if not math.isnan(r["gain"])
    ]
    print_table(
        "Fig. 9 — D-CHAG gain over TP-only (1.7B)",
        ["C", "TP", "config", "gain/GPU"],
        table,
        note="paper: Tree0-C ~baseline at 512ch, +60% at 1024ch; -L best, "
        "Tree0-L the overall winner (our model overshoots -L magnitudes; "
        "ordering and trends match — see EXPERIMENTS.md)",
    )
