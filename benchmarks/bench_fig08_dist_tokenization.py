"""Figure 8 — distributed tokenization alone does not pay (paper §4.4).

Paper, for a 1.7B model (bars): blue = baseline TP tokenization+aggregation
memory; red = baseline tokenization alone; green = distributed tokenization
alone (much smaller than red); yellow = distributed tokenization +
aggregation including the AllGather buffer — which negates the gains: at 512
channels yellow is *worse* than blue, at 1024 only modestly better.
"""

from figutils import fmt_gb, print_table, standalone_main  # also makes src/ importable in direct runs
from repro.perf import (
    FIGURE_BATCH,
    ParallelPlan,
    Workload,
    estimate_memory,
    frontier,
    named_model,
)

MACHINE = frontier()
MODEL = named_model("1.7B")
B = FIGURE_BATCH["fig8"]
# Paper runs each channel count at its minimum feasible TP (Fig. 7).
CASES = ((512, 2), (1024, 8))


def compute_fig8():
    rows = []
    for ch, tp in CASES:
        w = Workload(ch, B)
        base = estimate_memory(MODEL, w, ParallelPlan("tp", tp=tp))
        dist = estimate_memory(MODEL, w, ParallelPlan("dist_tok", tp=tp))
        rows.append(
            {
                "channels": ch,
                "tp": tp,
                "blue_tok_agg_baseline": base.tokenization + base.aggregation,
                "red_tok_baseline": base.tokenization,
                "green_tok_distributed": dist.tokenization,
                "yellow_dist_tok_plus_agg": dist.tokenization + dist.aggregation,
            }
        )
    return rows


def test_fig8_distributed_tokenization_alone_wins():
    """Green bars well below red bars."""
    for r in compute_fig8():
        assert r["green_tok_distributed"] < 0.6 * r["red_tok_baseline"]


def test_fig8_gather_negates_gains_at_512():
    """'for images with 512 channels, we observe a drop in performance'."""
    r512 = compute_fig8()[0]
    assert r512["yellow_dist_tok_plus_agg"] > 0.95 * r512["blue_tok_agg_baseline"]


def test_fig8_modest_effect_at_1024():
    """'for images with 1024 channels, only modest improvements are seen'."""
    r1024 = compute_fig8()[1]
    ratio = r1024["yellow_dist_tok_plus_agg"] / r1024["blue_tok_agg_baseline"]
    assert 0.5 < ratio < 1.1  # nowhere near the tokenization-only saving


def print_fig8(rows) -> None:
    print_table(
        "Fig. 8 — distributed tokenization (1.7B)",
        ["C", "TP", "blue: base tok+agg", "red: base tok", "green: dist tok", "yellow: dist tok+agg"],
        [
            [
                r["channels"],
                r["tp"],
                fmt_gb(r["blue_tok_agg_baseline"]),
                fmt_gb(r["red_tok_baseline"]),
                fmt_gb(r["green_tok_distributed"]),
                fmt_gb(r["yellow_dist_tok_plus_agg"]),
            ]
            for r in rows
        ],
        note="paper: green << red, but yellow ≈/> blue at 512ch (AllGather "
        "overhead), only modest improvement at 1024ch",
    )


def test_fig8_print_and_benchmark(benchmark):
    print_fig8(benchmark(compute_fig8))


def _standalone_body() -> None:
    """Print the table, then re-assert the suite's claims (the test functions
    are fixture-free, so calling them directly keeps one oracle)."""
    print_fig8(compute_fig8())
    test_fig8_distributed_tokenization_alone_wins()
    test_fig8_gather_negates_gains_at_512()
    test_fig8_modest_effect_at_1024()


if __name__ == "__main__":
    raise SystemExit(
        standalone_main(
            __doc__.splitlines()[0],
            _standalone_body,
            "Fig. 8 series reproduce the paper's qualitative claims",
            "Fig. 8 series contradict the paper's qualitative claims",
        )
    )
