"""Figure 15 — hybrid combinations of D-CHAG / TP / FSDP / DP on two nodes.

Paper: a 7B model on real 500-channel hyperspectral images, 16 GCDs (two
Frontier nodes — the minimum for TP alone).  With D-CHAG the model fits on a
single node (even two GPUs when FSDP shards the transformer), and the freed
memory converts into a larger batch and more TFLOPs/sec/node.
"""

from figutils import fmt_gb, print_table
from repro.perf import (
    FIGURE_BATCH,
    ParallelPlan,
    frontier,
    max_batch_per_replica,
    named_model,
    sustained_estimate,
)

MACHINE = frontier()
MODEL = named_model("7B")
CHANNELS = 500
GPUS = 16

COMBOS = (
    ParallelPlan("tp", tp=16),                                        # baseline
    ParallelPlan("tp", tp=8, fsdp=2),
    ParallelPlan("dchag", tp=16, dchag_kind="linear"),
    ParallelPlan("dchag", tp=8, dchag_kind="linear", dp=2),
    ParallelPlan("dchag", tp=8, dchag_kind="linear", fsdp=2),
    ParallelPlan("dchag", tp=2, dchag_kind="linear", fsdp=4, dp=2),
    ParallelPlan("dchag", tp=2, dchag_kind="linear", fsdp=8),
)


def compute_fig15():
    rows = []
    for plan in COMBOS:
        assert plan.total_gpus == GPUS
        est = sustained_estimate(MODEL, CHANNELS, plan, MACHINE)
        rows.append(
            {
                "plan": plan,
                "label": plan.label,
                "micro_batch": est.micro_batch,
                "mem": est.memory.total,
                "fits": est.fits,
                "tflops_node": est.tflops_per_node(MACHINE),
            }
        )
    return rows


def test_fig15_baseline_needs_both_nodes():
    """TP-only at 500 channels and the figure's micro-batch requires TP16
    (two nodes) — TP8 OOMs at that batch."""
    from repro.perf import FIGURE_BATCH, Workload, estimate_memory

    b = FIGURE_BATCH["fig15"]
    assert not estimate_memory(MODEL, Workload(CHANNELS, b), ParallelPlan("tp", tp=8)).fits(MACHINE)
    assert estimate_memory(MODEL, Workload(CHANNELS, b), ParallelPlan("tp", tp=16)).fits(MACHINE)


def test_fig15_dchag_fits_on_two_gpus_with_fsdp():
    """'we can fit the model on a single Frontier node, even with just two
    GPUs' (D-CHAG TP2 + FSDP sharding the transformer)."""
    plan = ParallelPlan("dchag", tp=2, dchag_kind="linear", fsdp=4)
    assert max_batch_per_replica(MODEL, CHANNELS, plan, MACHINE) > 0


def test_fig15_all_dchag_combos_fit():
    for r in compute_fig15():
        if r["plan"].strategy == "dchag":
            assert r["fits"], r["label"]


def test_fig15_best_combo_is_dchag_hybrid():
    rows = compute_fig15()
    best = max(rows, key=lambda r: r["tflops_node"])
    baseline = next(r for r in rows if r["label"] == "TP16")
    assert best["plan"].strategy == "dchag"
    assert best["tflops_node"] > 1.5 * baseline["tflops_node"]


def test_fig15_memory_reduction_enables_larger_batch():
    rows = {r["label"]: r for r in compute_fig15()}
    assert rows["D-CHAG-L-Tree0x8+DP2"]["micro_batch"] > rows["TP16"]["micro_batch"]


def test_fig15_print_and_benchmark(benchmark):
    rows = benchmark(compute_fig15)
    table = [
        [
            r["label"],
            r["micro_batch"],
            fmt_gb(r["mem"]),
            "ok" if r["fits"] else "OOM",
            f"{r['tflops_node']:.0f}",
        ]
        for r in rows
    ]
    print_table(
        "Fig. 15 — 7B / 500ch on 16 GCDs (2 nodes)",
        ["combination", "micro-batch", "GB/GPU", "fits", "TFLOP/s/node"],
        table,
        note="paper: TP alone only fits as TP16; D-CHAG fits on one node "
        "(even 2 GPUs w/ FSDP) and converts freed memory into throughput",
    )
