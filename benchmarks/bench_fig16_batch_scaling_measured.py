"""Figure 16 (measured) — throughput vs global batch through real worlds.

The analytic ``bench_fig16_batch_scaling.py`` projects sustained TFLOP/s at
1,024 GCDs.  This measured counterpart replays the §6.3 comparison at
simulation scale: baseline TP-spanning-both-nodes + DP versus Hybrid
D-CHAG (TP within a node, DP applied earlier), sweeping the global batch on
8 simulated ranks.  Step times come from the :class:`~repro.perf.VirtualClock`
makespan of real :func:`repro.dist.run_spmd` worlds (compute charged at the
plan's batch efficiency, every collective priced by the shared CostModel),
and throughput is useful serial-model FLOPs per virtual second — the same
currency the analytic figure quotes.
"""

from dataclasses import replace

from figutils import print_table, standalone_main
from repro.perf import ModelConfig, ParallelPlan, Workload, frontier
from repro.perf.calibrate import measure_plan
from repro.perf.flops import TRAIN_MULT, estimate_flops

MACHINE = replace(frontier(), gpus_per_node=4)   # 2 simulated nodes
MODEL = ModelConfig("tiny-7B", dim=32, depth=2, heads=4, patch=4, image_hw=(16, 16))
CHANNELS = 16
GPUS = 8

# Baseline: TP spans both nodes (replica = 8 GCDs, no DP room).
# Hybrid: D-CHAG/TP inside one node, DP across nodes (replica = 4 GCDs).
BASELINE = ParallelPlan("tp", tp=8)
HYBRID = ParallelPlan("dchag", tp=4, dchag_kind="linear", dp=2)
GLOBAL_BATCHES = (2, 4, 8)


def _useful_flops(batch: int) -> float:
    serial = estimate_flops(MODEL, Workload(CHANNELS, batch), ParallelPlan("serial"))
    return TRAIN_MULT * serial.total


def _throughput(plan: ParallelPlan, global_batch: int):
    """(useful GFLOP/s, MeasuredComm) at a fixed global batch."""
    micro = global_batch // plan.dp
    m = measure_plan(MODEL, Workload(CHANNELS, micro), plan, MACHINE)
    useful = _useful_flops(micro) * plan.dp
    return useful / m.step_seconds / 1e9, m


def compute_fig16_measured():
    rows = []
    for gb in GLOBAL_BATCHES:
        base_gflops, base = _throughput(BASELINE, gb)
        hybrid_gflops, hybrid = _throughput(HYBRID, gb)
        rows.append(
            {
                "global_batch": gb,
                "baseline_gflops": base_gflops,
                "hybrid_gflops": hybrid_gflops,
                "gain": hybrid_gflops / base_gflops - 1.0,
                "baseline_wire": sum(base.wire.values()),
                "hybrid_wire": sum(hybrid.wire.values()),
                "baseline": base,
                "hybrid": hybrid,
            }
        )
    return rows


def test_fig16_measured_wire_matches_cost_model():
    for r in compute_fig16_measured():
        assert r["baseline"].wire_matches_predicted(), r["global_batch"]
        assert r["hybrid"].wire_matches_predicted(), r["global_batch"]


def test_fig16_measured_hybrid_gain_positive_at_every_batch():
    """Hybrid D-CHAG sustains more useful FLOP/s at every global batch."""
    rows = compute_fig16_measured()
    assert all(r["gain"] > 0 for r in rows), [round(r["gain"], 2) for r in rows]


def test_fig16_measured_hybrid_moves_fewer_bytes():
    for r in compute_fig16_measured():
        assert r["hybrid_wire"] < r["baseline_wire"], r["global_batch"]


def test_fig16_measured_gain_grows_with_batch():
    """Larger batches amortize the fixed latency terms differently for the
    two layouts; the hybrid's advantage must not collapse as batch grows."""
    rows = compute_fig16_measured()
    assert rows[-1]["gain"] > 0.5 * rows[0]["gain"]


def test_fig16_measured_hybrid_still_wins_under_eager_schedule():
    """The §6.3 placement conclusion survives the overlapped (issue-queue)
    schedule: with DP buckets hiding under backward, the hybrid's edge over
    the node-spanning TP baseline persists at every global batch."""
    for gb in GLOBAL_BATCHES:
        base = measure_plan(
            MODEL, Workload(CHANNELS, gb // BASELINE.dp), BASELINE, MACHINE, eager=True
        )
        hyb = measure_plan(
            MODEL, Workload(CHANNELS, gb // HYBRID.dp), HYBRID, MACHINE, eager=True
        )
        base_gflops = _useful_flops(gb // BASELINE.dp) * BASELINE.dp / base.step_seconds / 1e9
        hyb_gflops = _useful_flops(gb // HYBRID.dp) * HYBRID.dp / hyb.step_seconds / 1e9
        assert hyb_gflops > base_gflops, gb
        assert hyb.wire_matches_predicted() and base.wire_matches_predicted()


def test_fig16_measured_print_and_benchmark(benchmark):
    rows = benchmark(compute_fig16_measured)
    table = [
        [
            r["global_batch"],
            f"{r['baseline_gflops']:.1f}",
            f"{r['hybrid_gflops']:.1f}",
            f"{r['gain']:+.0%}",
            r["baseline_wire"],
            r["hybrid_wire"],
        ]
        for r in rows
    ]
    print_table(
        "Fig. 16 (measured) — useful GFLOP/s vs global batch on 8 simulated GCDs",
        ["global batch", "baseline", "Hybrid D-CHAG", "gain", "base wire B", "hybrid wire B"],
        table,
        note="virtual-clock step times from real run_spmd worlds; baseline "
        "TP8 spans nodes, hybrid keeps TP in-node and applies DP early (§6.3)",
    )


def _body():
    test_fig16_measured_wire_matches_cost_model()
    test_fig16_measured_hybrid_gain_positive_at_every_batch()
    test_fig16_measured_hybrid_moves_fewer_bytes()
    rows = compute_fig16_measured()
    table = [
        [r["global_batch"], f"{r['baseline_gflops']:.1f}", f"{r['hybrid_gflops']:.1f}", f"{r['gain']:+.0%}"]
        for r in rows
    ]
    print_table(
        "Fig. 16 (measured) — useful GFLOP/s vs global batch",
        ["global batch", "baseline", "Hybrid D-CHAG", "gain"],
        table,
    )


if __name__ == "__main__":
    raise SystemExit(
        standalone_main(
            __doc__,
            _body,
            "hybrid D-CHAG outperforms the TP baseline in measured worlds",
            "measured fig16 claims failed",
        )
    )
