"""Figure 6 — single-GPU memory and TFLOPs by component.

Paper: memory usage (normalized to the full application) and TFLOPs/GPU for
tokenization / channel aggregation / transformer blocks, for 100M, 1B and 3B
models as the channel count grows; the 100M model handles up to 512
channels, 1B up to 256, 3B up to 128 (OOM beyond).
"""

import pytest

from figutils import fmt_gb, print_table
from repro.perf import (
    FIGURE_BATCH,
    ParallelPlan,
    Workload,
    estimate_flops,
    estimate_memory,
    frontier,
    named_model,
)

MACHINE = frontier()
MODELS = ("100M", "1B", "3B")
CHANNELS = (32, 64, 128, 256, 512, 1024)
B = FIGURE_BATCH["fig6"]
SERIAL = ParallelPlan("serial")


def compute_fig6():
    rows = []
    for name in MODELS:
        cfg = named_model(name)
        for ch in CHANNELS:
            w = Workload(ch, B)
            mem = estimate_memory(cfg, w, SERIAL)
            fl = estimate_flops(cfg, w, SERIAL)
            rows.append(
                {
                    "model": name,
                    "channels": ch,
                    "mem_tok": mem.tokenization,
                    "mem_agg": mem.aggregation,
                    "mem_vit": mem.transformer,
                    "mem_total": mem.total,
                    "flops_tok": fl.tokenization,
                    "flops_agg": fl.aggregation,
                    "flops_vit": fl.transformer,
                    "fits": mem.fits(MACHINE),
                }
            )
    return rows


def test_fig6_capacity_boundaries_match_paper():
    rows = {(r["model"], r["channels"]): r for r in compute_fig6()}
    assert rows[("100M", 512)]["fits"] and not rows[("100M", 1024)]["fits"]
    assert rows[("1B", 256)]["fits"] and not rows[("1B", 512)]["fits"]
    assert rows[("3B", 128)]["fits"] and not rows[("3B", 256)]["fits"]


def test_fig6_compute_shifts_to_channel_stage():
    """'the majority of the compute (FLOPs) is directed toward channel
    aggregation and tokenization' — at high channel counts, and the
    channel-stage share grows monotonically with C for every model."""
    rows = {(r["model"], r["channels"]): r for r in compute_fig6()}
    for model, ch in (("100M", 512), ("1B", 256)):
        r = rows[(model, ch)]
        assert r["flops_tok"] + r["flops_agg"] > r["flops_vit"]
    for model in MODELS:
        shares = [
            (rows[(model, c)]["flops_tok"] + rows[(model, c)]["flops_agg"])
            / (rows[(model, c)]["flops_tok"] + rows[(model, c)]["flops_agg"] + rows[(model, c)]["flops_vit"])
            for c in CHANNELS
        ]
        assert shares == sorted(shares)


def test_fig6_print_and_benchmark(benchmark):
    rows = benchmark(compute_fig6)
    table = []
    for r in rows:
        total = r["mem_total"]
        table.append(
            [
                r["model"],
                r["channels"],
                f"{r['mem_tok'] / total:.0%}",
                f"{r['mem_agg'] / total:.0%}",
                f"{r['mem_vit'] / total:.0%}",
                fmt_gb(total),
                "OOM" if not r["fits"] else "ok",
                f"{(r['flops_tok'] + r['flops_agg']) / (r['flops_tok'] + r['flops_agg'] + r['flops_vit']):.0%}",
            ]
        )
    print_table(
        "Fig. 6 — single-GPU components (batch %d)" % B,
        ["model", "C", "tok%", "agg%", "vit%", "total GB", "fits", "chan-stage FLOP share"],
        table,
        note="paper: 100M<=512ch, 1B<=256ch, 3B<=128ch on one 64 GB GCD; "
        "tokenization+aggregation dominate compute at high C",
    )
