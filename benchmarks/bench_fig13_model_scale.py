"""Figure 13 — D-CHAG+TP vs TP-only as the model scales (7B / 15B / 26B).

Paper: with linear partial aggregation, 7B gains 30 %/70 % (256/512
channels); 15B more than 20 %/50 % (128/256); 26B 10–30 % (64/128).  With
cross-attention units the gains are smaller (10 %/60 % for 7B).  Gains grow
with channel count and shrink with model size.  Preamble rows reproduce the
§6.1 FSDP-sufficiency boundary.
"""

from figutils import fmt_pct, print_table
from repro.perf import (
    FIGURE_BATCH,
    ParallelPlan,
    Workload,
    estimate_memory,
    frontier,
    named_model,
    throughput_gain,
)

MACHINE = frontier()
B = FIGURE_BATCH["fig13"]
# (model, channels list) pairs as in the paper's figure, all at TP16.
CASES = (("7B", (256, 512)), ("15B", (128, 256)), ("26B", (64, 128)))
PAPER_GAINS = {  # (model, ch, kind) -> paper's quoted gain
    ("7B", 256, "linear"): 0.30,
    ("7B", 512, "linear"): 0.70,
    ("7B", 256, "cross"): 0.10,
    ("7B", 512, "cross"): 0.60,
}


def compute_fig13(tp: int = 16):
    rows = []
    for model, channels in CASES:
        cfg = named_model(model)
        base = ParallelPlan("tp", tp=tp)
        for ch in channels:
            for kind in ("linear", "cross"):
                plan = ParallelPlan("dchag", tp=tp, dchag_kind=kind, dchag_fanout=0)
                rows.append(
                    {
                        "model": model,
                        "channels": ch,
                        "kind": kind,
                        "gain": throughput_gain(cfg, ch, plan, base, MACHINE),
                        "paper": PAPER_GAINS.get((model, ch, kind)),
                    }
                )
    return rows


def fsdp_sufficiency_rows():
    """§6.1 preamble: what FSDP-only can fit on one node."""
    cases = (("7B", 128, True), ("7B", 256, False), ("15B", 64, True), ("26B", 64, False))
    rows = []
    for model, ch, expect in cases:
        fits = estimate_memory(
            named_model(model), Workload(ch, FIGURE_BATCH["fig6"]), ParallelPlan("tp", fsdp=8)
        ).fits(MACHINE)
        rows.append({"model": model, "channels": ch, "fits": fits, "paper_fits": expect})
    return rows


def test_fig13_gains_positive_where_paper_reports_gains():
    for r in compute_fig13():
        if r["kind"] == "linear":
            assert r["gain"] > 0.0, r


def test_fig13_gains_grow_with_channels():
    rows = {(r["model"], r["channels"], r["kind"]): r["gain"] for r in compute_fig13()}
    for model, (c1, c2) in CASES:
        for kind in ("linear", "cross"):
            assert rows[(model, c2, kind)] > rows[(model, c1, kind)]


def test_fig13_gains_shrink_with_model_size():
    rows = {(r["model"], r["channels"], r["kind"]): r["gain"] for r in compute_fig13()}
    assert rows[("7B", 512, "linear")] > rows[("15B", 256, "linear")] > rows[("26B", 128, "linear")]


def test_fig13_linear_beats_cross():
    rows = {(r["model"], r["channels"], r["kind"]): r["gain"] for r in compute_fig13()}
    for model, channels in CASES:
        for ch in channels:
            assert rows[(model, ch, "linear")] > rows[(model, ch, "cross")]


def test_fig13_7b_magnitudes_within_2x_of_paper():
    for r in compute_fig13():
        if r["paper"] is not None:
            assert r["paper"] / 3 < max(r["gain"], 1e-3) < r["paper"] * 3, r


def test_fsdp_sufficiency_matches_paper():
    for r in fsdp_sufficiency_rows():
        assert r["fits"] == r["paper_fits"], r


def test_fig13_print_and_benchmark(benchmark):
    rows = benchmark(compute_fig13)
    table = [
        [
            r["model"],
            r["channels"],
            "D-CHAG-" + ("L" if r["kind"] == "linear" else "C"),
            fmt_pct(r["gain"]),
            fmt_pct(r["paper"]) if r["paper"] is not None else "-",
        ]
        for r in rows
    ]
    print_table(
        "Fig. 13 — gains over TP16-only by model size",
        ["model", "C", "variant", "measured", "paper"],
        table,
    )
    fs = fsdp_sufficiency_rows()
    print_table(
        "§6.1 — FSDP-only one-node feasibility",
        ["model", "C", "fits (ours)", "fits (paper)"],
        [[r["model"], r["channels"], r["fits"], r["paper_fits"]] for r in fs],
    )
