"""Ablation — aggregation-layer design choices (paper §3.3, §5).

The paper argues (a) intermediate aggregation layers can be linear with no
quality loss *as long as the final shared layer stays cross-attention*, and
(b) the Perceiver is a more expensive fusion module that D-CHAG would help
even more (§3.5).  This ablation trains the miniature MAE with four
aggregator variants and compares convergence and cost:

* cross-attention aggregation (the baseline module);
* linear channel mixer (the -L approximation);
* Perceiver fusion (Aurora-style);
* and, distributed: D-CHAG-L with a *linear* final layer — the configuration
  the paper warns about — versus the standard cross-attention final layer.
"""

import numpy as np
import pytest

from figutils import print_table
from repro.core import DCHAG, DCHAGConfig
from repro.dist import run_spmd
from repro.models import MAEModel, build_serial_mae
from repro.nn import LinearChannelMixer, PerceiverChannelFusion, ViTEncoder
from repro.perf import estimate_flops, ModelConfig, ParallelPlan, Workload
from repro.tensor import count_flops
from repro.train import TrainConfig, Trainer

C, IMG, P, D, HEADS, DEPTH, STEPS = 8, 16, 4, 32, 4, 2, 12


def _batch():
    from repro.data import HyperspectralConfig, HyperspectralDataset

    ds = HyperspectralDataset(HyperspectralConfig(channels=C, height=IMG, width=IMG, n_images=8, seed=3))
    return ds.batch(range(6))


def train_serial(agg_kind: str):
    batch = _batch()
    model = build_serial_mae(
        channels=C, image=IMG, patch=P, dim=D, depth=DEPTH, heads=HEADS,
        rng=np.random.default_rng(0), mask_ratio=0.5,
        agg="cross" if agg_kind != "linear" else "linear",
    )
    if agg_kind == "perceiver":
        model.frontend.aggregator = PerceiverChannelFusion(D, HEADS, np.random.default_rng(1))
    tr = Trainer(model, TrainConfig(lr=3e-3, total_steps=STEPS, warmup_steps=2))
    with count_flops() as counter:
        losses = [tr.step(batch, np.random.default_rng(100 + i)) for i in range(STEPS)]
    return losses, counter.total, model


def train_dchag_final(final_kind: str):
    """D-CHAG-L with a cross-attention (paper's rule) or linear final layer."""
    batch = _batch()

    def fn(comm):
        cfg = DCHAGConfig(channels=C, patch=P, dim=D, heads=HEADS, kind="linear")
        frontend = DCHAG(comm, None, cfg, rng_seed=2)
        if final_kind == "linear":
            # Violate §3.3's rule: replace the shared final cross-attention.
            frontend.final = LinearChannelMixer(comm.world.size, 1, np.random.default_rng(0))
        shared = np.random.default_rng(0)
        model = MAEModel(
            frontend, ViTEncoder(D, DEPTH, HEADS, shared),
            num_tokens=(IMG // P) ** 2, dim=D, patch=P, out_channels=C,
            rng=shared, mask_ratio=0.5, decoder_depth=2,
        )
        tr = Trainer(model, TrainConfig(lr=3e-3, total_steps=STEPS, warmup_steps=2))
        return [tr.step(batch, np.random.default_rng(100 + i)) for i in range(STEPS)]

    return run_spmd(fn, 2)[0]


@pytest.fixture(scope="module")
def serial_runs():
    return {kind: train_serial(kind) for kind in ("cross", "linear", "perceiver")}


def test_linear_aggregation_matches_cross_quality(serial_runs):
    """§3.3: linear intermediate layers should not hurt convergence."""
    cross = serial_runs["cross"][0][-1]
    linear = serial_runs["linear"][0][-1]
    assert abs(linear - cross) / cross < 0.5


def test_perceiver_costs_more_flops(serial_runs):
    """§3.5: the Perceiver is 'a more computationally intensive
    cross-attention-based module'."""
    assert serial_runs["perceiver"][1] > serial_runs["cross"][1]


def test_perceiver_converges(serial_runs):
    losses = serial_runs["perceiver"][0]
    assert losses[-1] < losses[0]


def test_analytic_agg_flops_ranks_cross_over_linear():
    cfg = ModelConfig("tiny", dim=D, depth=DEPTH, heads=HEADS, patch=P, image_hw=(IMG, IMG))
    cross = estimate_flops(cfg, Workload(C, 6), ParallelPlan("serial")).aggregation
    dchag_l = estimate_flops(
        cfg, Workload(C, 6), ParallelPlan("dchag", tp=2, dchag_kind="linear")
    ).aggregation
    assert cross > 5 * dchag_l


def test_dchag_converges_with_either_final_layer():
    cross_final = train_dchag_final("cross")
    linear_final = train_dchag_final("linear")
    assert cross_final[-1] < cross_final[0]
    assert linear_final[-1] < linear_final[0]


def test_ablation_aggregation_print_and_benchmark(serial_runs, benchmark):
    def collect():
        rows = []
        for kind, (losses, flops, model) in serial_runs.items():
            rows.append([kind, f"{losses[0]:.4f}", f"{losses[-1]:.4f}", f"{flops / 1e9:.1f}G",
                         model.frontend.aggregator.num_parameters()])
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    print_table(
        "Ablation — aggregation layer variants (serial MAE, 12 steps)",
        ["aggregator", "loss[0]", "loss[-1]", "train GFLOPs", "agg params"],
        rows,
        note="paper: linear intermediates are fine, final layer stays "
        "cross-attention; Perceiver costs more compute (bigger D-CHAG win)",
    )
