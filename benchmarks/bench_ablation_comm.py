"""Ablation — measured communication patterns of the three channel-stage
strategies (TP-only, distributed tokenization §3.1, D-CHAG §3.3).

Unlike the figure benches (analytic models), this ablation measures traffic
from *real simulated runs* via the runtime's traffic log, confirming the
paper's communication claims mechanically:

* TP-only: no channel-stage collectives (tokenization is redundant);
* distributed tokenization: a full-token AllGather forward + a ReduceScatter
  backward;
* D-CHAG: one AllGather of a single channel per rank, nothing backward.
"""

import numpy as np
import pytest

from figutils import print_table, standalone_main  # also makes src/ importable in direct runs
from repro.core import DCHAG, DCHAGConfig
from repro.dist import run_spmd_world
from repro.nn import ChannelCrossAttention, PatchTokenizer
from repro.parallel import DistributedTokenizer
from repro.tensor import Tensor

B, C, IMG, P, D, HEADS, WORLD = 2, 16, 16, 4, 32, 4, 4
N_TOKENS = (IMG // P) ** 2


def _images():
    return np.random.default_rng(0).standard_normal((B, C, IMG, IMG)).astype(np.float32)


def run_tp_baseline():
    imgs = _images()

    def fn(comm):
        # Every rank tokenizes and aggregates everything (redundantly).
        rng = np.random.default_rng(0)
        tok = PatchTokenizer(C, P, D, rng)
        agg = ChannelCrossAttention(D, HEADS, rng)
        out = agg(tok(imgs))
        (out * out).mean().backward()

    _, world = run_spmd_world(fn, WORLD)
    return world.traffic


def run_dist_tok():
    imgs = _images()
    master = PatchTokenizer(C, P, D, np.random.default_rng(0))

    def fn(comm):
        tok = DistributedTokenizer(comm, None, C, P, D, master.weight.data, master.bias.data)
        agg = ChannelCrossAttention(D, HEADS, np.random.default_rng(0))
        out = agg(tok(imgs))
        (out * out).mean().backward()

    _, world = run_spmd_world(fn, WORLD)
    return world.traffic


def run_dchag():
    imgs = _images()

    def fn(comm):
        cfg = DCHAGConfig(channels=C, patch=P, dim=D, heads=HEADS, kind="linear")
        model = DCHAG(comm, None, cfg)
        out = model(imgs)
        (out * out).mean().backward()

    _, world = run_spmd_world(fn, WORLD)
    return world.traffic


def summarize(traffic):
    return {
        "fwd_gather_bytes": traffic.payload_bytes(op="all_gather", rank=0),
        "bwd_collectives": traffic.count(phase="backward"),
        "total_wire_bytes": traffic.wire_bytes(rank=0),
        "ops": traffic.ops_histogram(),
    }


# Shared oracles: the pytest tests and the standalone main() assert the very
# same claims through these helpers so the two harnesses cannot drift.


def assert_tp_baseline_silent(s) -> None:
    assert s["ops"] == {}


def assert_dist_tok_claims(s) -> None:
    expected_fwd = B * (C // WORLD) * N_TOKENS * D * 4
    assert s["fwd_gather_bytes"] == expected_fwd
    assert s["bwd_collectives"] == WORLD  # one ReduceScatter per rank


def assert_dchag_claims(s) -> None:
    assert s["fwd_gather_bytes"] == B * 1 * N_TOKENS * D * 4
    assert s["bwd_collectives"] == 0


def assert_dchag_cheaper(dchag, dist) -> None:
    """The C/tp ratio shows up on the wire: D-CHAG moves 1 channel where
    distributed tokenization moves C/tp."""
    assert dist["fwd_gather_bytes"] == (C // WORLD) * dchag["fwd_gather_bytes"]
    assert dchag["total_wire_bytes"] < dist["total_wire_bytes"] / 2


def test_tp_baseline_has_no_channel_stage_comm():
    assert_tp_baseline_silent(summarize(run_tp_baseline()))


def test_dist_tok_pays_full_token_gather_and_backward():
    assert_dist_tok_claims(summarize(run_dist_tok()))


def test_dchag_gather_is_one_channel_and_backward_free():
    assert_dchag_claims(summarize(run_dchag()))


def test_dchag_moves_fewer_bytes_than_dist_tok():
    assert_dchag_cheaper(summarize(run_dchag()), summarize(run_dist_tok()))


def collect_all():
    """Measure all three strategies once."""
    return {
        "TP-only": summarize(run_tp_baseline()),
        "dist-tok (§3.1)": summarize(run_dist_tok()),
        "D-CHAG (§3.3)": summarize(run_dchag()),
    }


def print_results(results) -> None:
    print_table(
        "Ablation — measured channel-stage traffic (4 ranks, 16 channels)",
        ["strategy", "fwd gather B/rank", "bwd collectives", "wire B/rank"],
        [
            [name, s["fwd_gather_bytes"], s["bwd_collectives"], s["total_wire_bytes"]]
            for name, s in results.items()
        ],
        note="D-CHAG gathers exactly one channel per rank and never "
        "communicates in backward",
    )


def test_ablation_comm_print_and_benchmark(benchmark):
    results = benchmark.pedantic(collect_all, rounds=1, iterations=1)
    print_results(results)


def _standalone_body() -> None:
    """Measure once, print the table, assert the suite's claims."""
    results = collect_all()
    print_results(results)
    assert_tp_baseline_silent(results["TP-only"])
    assert_dist_tok_claims(results["dist-tok (§3.1)"])
    assert_dchag_claims(results["D-CHAG (§3.3)"])
    assert_dchag_cheaper(results["D-CHAG (§3.3)"], results["dist-tok (§3.1)"])


if __name__ == "__main__":
    raise SystemExit(
        standalone_main(
            __doc__.splitlines()[0],
            _standalone_body,
            "measured traffic matches the paper's communication claims",
            "measured traffic contradicts the paper's communication claims",
        )
    )
