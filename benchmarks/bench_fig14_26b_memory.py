"""Figure 14 — the 26B memory wall, and how D-CHAG breaks it.

Paper: a 26B model with 256-channel images cannot fit on Frontier with TP
alone at any GPU count (tokenization + aggregation are not distributed by
TP, so adding GPUs barely helps); with D-CHAG the same model fits even 512
channels at <80 % memory.  D-CHAG's own caveat: its channel-stage layers
grow (linearly) with the rank count.
"""

from figutils import fmt_gb, print_table
from repro.perf import (
    FIGURE_BATCH,
    ParallelPlan,
    Workload,
    estimate_memory,
    frontier,
    named_model,
)

MACHINE = frontier()
MODEL = named_model("26B")
B = FIGURE_BATCH["fig14"]
GPU_COUNTS = (8, 16, 32, 64)


def compute_fig14():
    rows = []
    for tp in GPU_COUNTS:
        base = estimate_memory(MODEL, Workload(256, B), ParallelPlan("tp", tp=tp))
        dchag = estimate_memory(
            MODEL, Workload(512, B), ParallelPlan("dchag", tp=tp, dchag_kind="linear")
        )
        rows.append(
            {
                "gpus": tp,
                "tp_total": base.total,
                "tp_chan_stage": base.tokenization + base.aggregation,
                "tp_fits": base.fits(MACHINE),
                "dchag_total": dchag.total,
                "dchag_chan_stage": dchag.tokenization + dchag.aggregation,
                "dchag_util": dchag.utilization(MACHINE),
                "dchag_fits": dchag.fits(MACHINE),
            }
        )
    return rows


def test_fig14_tp_only_never_fits():
    assert all(not r["tp_fits"] for r in compute_fig14())


def test_fig14_more_gpus_do_not_shrink_channel_stage():
    """'using more GPUs won't help decrease memory usage' — even at 64 GPUs
    the TP-only channel stage alone exceeds one GCD's HBM (tokenization is
    fully replicated; only the aggregation head-sharding shrinks)."""
    rows = compute_fig14()
    first, last = rows[0], rows[-1]
    assert last["tp_chan_stage"] > 0.5 * first["tp_chan_stage"]
    assert last["tp_chan_stage"] > MACHINE.hbm_bytes * 0.92


def test_fig14_dchag_fits_512_under_80pct():
    rows = compute_fig14()
    assert any(r["dchag_fits"] and r["dchag_util"] < 0.8 for r in rows)


def test_fig14_dchag_channel_stage_grows_linearly_in_total():
    """'with our approach, the model size increases linearly' in ranks —
    summed over ranks, not per rank."""
    rows = compute_fig14()
    totals = [r["gpus"] * r["dchag_chan_stage"] for r in rows]
    assert totals == sorted(totals)


def test_fig14_print_and_benchmark(benchmark):
    rows = benchmark(compute_fig14)
    table = [
        [
            r["gpus"],
            fmt_gb(r["tp_total"]),
            "OOM" if not r["tp_fits"] else "ok",
            fmt_gb(r["dchag_total"]),
            f"{r['dchag_util']:.0%}",
            fmt_gb(r["dchag_chan_stage"]),
        ]
        for r in rows
    ]
    print_table(
        "Fig. 14 — 26B model memory (TP@256ch vs D-CHAG@512ch)",
        ["GPUs", "TP GB/GPU", "TP fits", "D-CHAG GB/GPU", "D-CHAG util", "D-CHAG tok+agg GB"],
        table,
        note="paper: TP-only cannot fit 256ch at any scale; D-CHAG fits "
        "512ch at <80% utilization",
    )
