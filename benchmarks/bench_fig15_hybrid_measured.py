"""Figure 15 (measured) — hybrid tp × fsdp × dp combos through real worlds.

The analytic ``bench_fig15_hybrid.py`` prices the paper's 7B/16-GCD combos
with the α–β model alone.  This measured counterpart sweeps the same *kind*
of factorizations — every hybrid of D-CHAG/TP, FSDP and DP over 8 simulated
ranks — through **real** :func:`repro.dist.run_spmd` worlds: each rank
replays the plan's exact collective schedule on its
:class:`~repro.parallel.DeviceMesh` groups under a
:class:`~repro.perf.VirtualClock`, and the traffic log's measured wire bytes
are compared byte-for-byte against :func:`~repro.perf.estimate_step_comm` —
the analytic/measured contract the calibration harness enforces in CI.

A scaled-down model keeps the 8-rank worlds fast; the *claims* are
scale-free: exact wire parity per axis, virtual comm time equal to the
analytic un-overlapped prediction, and D-CHAG moving far fewer bytes than
TP-everywhere or distributed tokenization.
"""

from dataclasses import replace

from figutils import print_table, standalone_main
from repro.perf import ModelConfig, ParallelPlan, Workload, frontier
from repro.perf.calibrate import measure_plan

# 2 simulated nodes of 4 GPUs: TP≤4 stays on the fast fabric, DP/FSDP that
# multiply past 4 ranks pay the inter-node link — the fig-15 placement story.
MACHINE = replace(frontier(), gpus_per_node=4)
# Tiny stand-in for the 7B model: dims chosen so every schedule payload
# divides every group size (exact padded-collective parity).
MODEL = ModelConfig("tiny-7B", dim=32, depth=2, heads=4, patch=4, image_hw=(16, 16))
CHANNELS = 16
BATCH = 2
GPUS = 8

COMBOS = (
    ParallelPlan("tp", tp=8),                                         # baseline
    ParallelPlan("tp", tp=4, dp=2),
    ParallelPlan("tp", tp=4, fsdp=2),
    ParallelPlan("dist_tok", tp=4, dp=2),
    ParallelPlan("dchag", tp=4, dchag_kind="linear", dp=2),
    ParallelPlan("dchag", tp=4, dchag_kind="linear", fsdp=2),
    ParallelPlan("dchag", tp=2, dchag_kind="linear", fsdp=2, dp=2),
)

WORKLOAD = Workload(CHANNELS, BATCH)


def compute_fig15_measured():
    rows = []
    for plan in COMBOS:
        assert plan.total_gpus == GPUS
        m = measure_plan(MODEL, WORKLOAD, plan, MACHINE)
        rows.append(
            {
                "plan": plan,
                "label": plan.label,
                "measured": m,
                "total_wire": sum(m.wire.values()),
                "comm_us": m.comm_seconds * 1e6,
                "step_us": m.step_seconds * 1e6,
            }
        )
    return rows


def test_fig15_measured_wire_matches_cost_model():
    """Per-axis measured wire bytes equal the CostModel prediction exactly
    for every combo — the acceptance contract of the cost engine."""
    for r in compute_fig15_measured():
        m = r["measured"]
        assert m.wire_matches_predicted(), (
            r["label"], m.wire, m.predicted.wire_by_axis()
        )


def test_fig15_measured_time_matches_analytic():
    """Virtual collective seconds equal the analytic un-overlapped total."""
    for r in compute_fig15_measured():
        m = r["measured"]
        assert abs(m.comm_seconds - m.predicted.total) <= 1e-9 + 1e-6 * m.predicted.total, r["label"]


def test_fig15_measured_dchag_and_placement_claims():
    """The D-CHAG gather is a tiny fraction of dist-tok's; keeping TP inside
    a node (every tp≤4 combo) beats the node-spanning TP8 baseline on
    measured comm time, and the deepest hybrid is the cheapest of all —
    §6.3's placement story reproduced from real rank timelines."""
    rows = {r["label"]: r for r in compute_fig15_measured()}
    dchag = rows["D-CHAG-L-Tree0x4+DP2"]["measured"]
    dist_tok = rows["DistTok-TP4+DP2"]["measured"]
    # dist-tok gathers C/tp channels and pays the backward ReduceScatter;
    # D-CHAG gathers one channel with no backward — C/tp·(ratio of passes)
    # cheaper (8× at C=16, tp=4).
    assert dchag.wire["gather"] * (CHANNELS // 4) <= dist_tok.wire["gather"]
    baseline_comm = rows["TP8"]["measured"].comm_seconds
    for label, r in rows.items():
        if label != "TP8":
            assert r["measured"].comm_seconds < baseline_comm, label
    cheapest = min(rows.values(), key=lambda r: r["measured"].comm_seconds)
    assert cheapest["label"] == "D-CHAG-L-Tree0x2+FSDP2+DP2"


def test_fig15_measured_overlaps_are_fractions():
    for r in compute_fig15_measured():
        ov = r["measured"].overlaps
        assert 0.0 <= ov.dp_overlap <= 1.0
        assert 0.0 <= ov.fsdp_overlap <= 1.0


def test_fig15_measured_eager_replay_is_schedule_accurate():
    """Re-running the hybrid combos on the issue-queue clock keeps exact
    wire parity, never exceeds the blocking makespan, and upgrades the
    overlap derivation from the min(comm, compute) bound to per-bucket
    measured exposure."""
    for plan in (COMBOS[2], COMBOS[5], COMBOS[6]):  # the fsdp/dp hybrids
        blocking = measure_plan(MODEL, WORKLOAD, plan, MACHINE, compute_scale=50.0)
        eager = measure_plan(
            MODEL, WORKLOAD, plan, MACHINE, eager=True, compute_scale=50.0
        )
        assert eager.wire_matches_predicted(), plan.label
        assert eager.step_seconds <= blocking.step_seconds + 1e-15, plan.label
        assert eager.overlaps.fsdp.source == "measured"
        assert eager.overlaps.buckets, plan.label
        for b in eager.overlaps.buckets:
            assert 0.0 <= b.hidden_fraction <= 1.0


def test_fig15_measured_print_and_benchmark(benchmark):
    rows = benchmark(compute_fig15_measured)
    table = [
        [
            r["label"],
            r["total_wire"],
            "yes" if r["measured"].wire_matches_predicted() else "NO",
            f"{r['comm_us']:.1f}",
            f"{r['step_us']:.1f}",
            f"{r['measured'].overlaps.dp_overlap:.2f}",
            f"{r['measured'].overlaps.fsdp_overlap:.2f}",
        ]
        for r in rows
    ]
    print_table(
        "Fig. 15 (measured) — hybrid combos on 8 simulated GCDs (2 nodes)",
        ["combination", "wire B/rank", "=model", "comm µs", "step µs", "dp ov", "fsdp ov"],
        table,
        note="wire bytes from real run_spmd worlds; '=model' checks exact "
        "parity with estimate_step_comm; overlaps derived from rank timelines",
    )


def _body():
    test_fig15_measured_wire_matches_cost_model()
    test_fig15_measured_time_matches_analytic()
    test_fig15_measured_dchag_and_placement_claims()
    rows = compute_fig15_measured()
    table = [
        [r["label"], r["total_wire"], f"{r['comm_us']:.1f}", f"{r['step_us']:.1f}"]
        for r in rows
    ]
    print_table(
        "Fig. 15 (measured) — hybrid combos on 8 simulated GCDs",
        ["combination", "wire B/rank", "comm µs", "step µs"],
        table,
    )


if __name__ == "__main__":
    raise SystemExit(
        standalone_main(
            __doc__,
            _body,
            "measured hybrid traffic matches the CostModel exactly",
            "measured/analytic divergence",
        )
    )
