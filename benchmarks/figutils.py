"""Shared helpers for the per-figure benchmark harness.

Every ``bench_figNN_*.py`` regenerates one table/figure from the paper's
evaluation: it computes the same series the figure plots, prints them as a
table (with the paper's quoted numbers alongside where the text gives any),
and times the computation under pytest-benchmark.
"""

from __future__ import annotations

from typing import Sequence

GiB = 1024**3

__all__ = ["GiB", "print_table", "fmt_gb", "fmt_pct"]


def fmt_gb(nbytes: float) -> str:
    return f"{nbytes / GiB:.1f}"


def fmt_pct(frac: float) -> str:
    if frac != frac:  # nan
        return "n/a"
    if frac == float("inf"):
        return "OOM→fits"
    return f"{frac:+.0%}"


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence], note: str = "") -> None:
    widths = [len(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        print(f"note: {note}")
