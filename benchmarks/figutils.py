"""Shared helpers for the per-figure benchmark harness.

Every ``bench_figNN_*.py`` regenerates one table/figure from the paper's
evaluation: it computes the same series the figure plots, prints them as a
table (with the paper's quoted numbers alongside where the text gives any),
and times the computation under pytest-benchmark.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Sequence

# Direct `python benchmarks/bench_*.py` runs resolve figutils via the script
# directory (sys.path[0]); give them the package the same way.  Under pytest
# this is a no-op because pytest.ini already sets pythonpath = src.
_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

GiB = 1024**3

__all__ = ["GiB", "print_table", "fmt_gb", "fmt_pct", "standalone_main"]


def standalone_main(description: str, body, ok_msg: str, fail_msg: str, argv=None) -> int:
    """Shared scaffolding for direct ``python bench_*.py [--smoke]`` runs.

    Parses the (currently cosmetic) ``--smoke`` flag, runs *body* — which
    prints its table and asserts the same claims the pytest suite does — and
    maps an AssertionError to exit code 1 with *fail_msg*.
    """
    import argparse

    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="accepted for harness compatibility; runs are a single quick pass either way",
    )
    parser.parse_args(argv)
    try:
        body()
    except AssertionError as exc:
        print(f"FAIL: {fail_msg} ({exc})")
        return 1
    print(f"OK: {ok_msg}")
    return 0


def fmt_gb(nbytes: float) -> str:
    return f"{nbytes / GiB:.1f}"


def fmt_pct(frac: float) -> str:
    if frac != frac:  # nan
        return "n/a"
    if frac == float("inf"):
        return "OOM→fits"
    return f"{frac:+.0%}"


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence], note: str = "") -> None:
    widths = [len(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        print(f"note: {note}")
