"""§6.2 configuration search, re-ranked with measured inputs.

The headline artifact of the overlap-aware autotuner: the full
``search_configurations`` sweep the paper tunes by hand (7B / 500 channels /
1,024 GCDs / global batch 4,096) ranked twice —

* **paper constants**: dp/fsdp communication discounted by the assumed
  0.8 / 0.5 hidden fractions;
* **derived overlaps**: every candidate ranked with fractions derived from
  *its own* issue-queue simulation (:func:`repro.perf.simulated_overlaps` —
  a structure-preserving stand-in of the plan replayed through a real
  ``run_spmd`` world on an eager clock, FSDP gathers prefetching under
  forward, the DP AllReduce bucketed through backward).

Claims asserted (and pinned by ``tests/test_autotune.py``):

1. the podium is robust — D-CHAG with early DP wins under both rankings
   (the paper's §6.2/§6.3 conclusion survives measurement);
2. the mid-table re-ranks — at least one adjacent pair swaps, because the
   measured DP fraction collapses for plans whose FSDP gradient traffic
   crowds the same backward window the DP buckets need.
"""

import functools

from figutils import print_table, standalone_main
from repro.perf import frontier, named_model, search_configurations, simulated_overlaps

MACHINE = frontier()
MODEL = named_model("7B")
CHANNELS = 500
GPUS = 1024
GLOBAL_BATCH = 4096
TOP = 10


def compute_rankings():
    constant = search_configurations(MODEL, CHANNELS, GPUS, MACHINE, GLOBAL_BATCH)
    oracle = simulated_overlaps(MACHINE, MODEL, CHANNELS)
    derived = search_configurations(
        MODEL, CHANNELS, GPUS, MACHINE, GLOBAL_BATCH, overlaps=oracle
    )
    return constant, derived


# The sweep is deterministic; every assertion and the printed table read the
# same pair, computed once (the pytest-benchmark test times the raw version).
_rankings = functools.lru_cache(maxsize=1)(compute_rankings)


def _assert_podium_robust(constant, derived):
    assert [t.plan.label for t in constant[:3]] == [t.plan.label for t in derived[:3]]
    best = derived[0]
    assert best.plan.strategy == "dchag" and best.plan.dp > 1


def _assert_mid_table_reranks(constant, derived):
    assert [t.plan.label for t in constant] != [t.plan.label for t in derived]


def _assert_fractions_measured(derived):
    measured = [t for t in derived if t.overlaps is not None]
    assert measured, "plans with a dp/fsdp axis must carry derived overlaps"
    for t in measured:
        assert t.overlaps.dp.source == "measured"
        assert 0.0 <= t.overlaps.dp_overlap <= 1.0
        assert 0.0 <= t.overlaps.fsdp_overlap <= 1.0
    fractions = {
        (round(t.overlaps.dp_overlap, 3), round(t.overlaps.fsdp_overlap, 3))
        for t in measured
    }
    assert len(fractions) > 1, "fractions must differ by plan shape"


def _print_ranking(constant, derived, note: str = "") -> None:
    const_pos = {t.plan.label: i for i, t in enumerate(constant)}
    table = [
        [
            i,
            t.plan.label,
            f"{t.total_tflops:,.0f}",
            const_pos[t.plan.label],
            "-" if t.overlaps is None else f"{t.overlaps.dp_overlap:.2f}",
            "-" if t.overlaps is None else f"{t.overlaps.fsdp_overlap:.2f}",
        ]
        for i, t in enumerate(derived[:TOP])
    ]
    print_table(
        "§6.2 search re-ranked with derived overlaps (7B / 500 ch / 1,024 GCDs)",
        ["#", "plan", "TFLOP/s", "# const", "dp ov", "fsdp ov"],
        table,
        note=note,
    )


def test_sec62_podium_is_robust_to_measured_overlaps():
    _assert_podium_robust(*_rankings())


def test_sec62_mid_table_reranks():
    _assert_mid_table_reranks(*_rankings())


def test_sec62_derived_fractions_are_measured_per_plan():
    _, derived = _rankings()
    _assert_fractions_measured(derived)


def test_sec62_print_and_benchmark(benchmark):
    constant, derived = benchmark(compute_rankings)
    _print_ranking(
        constant,
        derived,
        note="'# const' is the plan's position under the paper's 0.8/0.5 "
        "constants; dp/fsdp ov are measured per plan from its own "
        "issue-queue simulation",
    )


def _body():
    constant, derived = _rankings()
    _assert_podium_robust(constant, derived)
    _assert_mid_table_reranks(constant, derived)
    _assert_fractions_measured(derived)
    _print_ranking(constant, derived)


if __name__ == "__main__":
    raise SystemExit(
        standalone_main(
            __doc__,
            _body,
            "podium robust, mid-table re-ranked with measured overlap fractions",
            "re-ranked sec 6.2 claims failed",
        )
    )
