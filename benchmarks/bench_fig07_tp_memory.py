"""Figure 7 — per-GPU memory of 1.7B and 7B models under tensor parallelism.

Paper: for 1.7B, two GPUs are required to fit 512 input channels and a full
Frontier node (TP8) for 1024; for 7B, 256 channels fit on half a node (TP4)
and 512 need two nodes (TP16).  Tokenization + channel aggregation account
for 50–90 % of memory at high channel counts.
"""

from figutils import fmt_gb, print_table
from repro.perf import (
    FIGURE_BATCH,
    ParallelPlan,
    Workload,
    estimate_memory,
    frontier,
    named_model,
)

MACHINE = frontier()
SWEEP = {
    "1.7B": (FIGURE_BATCH["fig7_1.7B"], (256, 512, 1024), (1, 2, 4, 8)),
    "7B": (FIGURE_BATCH["fig7_7B"], (128, 256, 512), (2, 4, 8, 16)),
}


def compute_fig7():
    rows = []
    for model, (batch, channels, tps) in SWEEP.items():
        cfg = named_model(model)
        for ch in channels:
            for tp in tps:
                mem = estimate_memory(cfg, Workload(ch, batch), ParallelPlan("tp", tp=tp))
                rows.append(
                    {
                        "model": model,
                        "channels": ch,
                        "tp": tp,
                        "total": mem.total,
                        "tok_agg_frac": mem.tok_plus_agg_fraction,
                        "fits": mem.fits(MACHINE),
                    }
                )
    return rows


def _min_tp(rows, model, ch):
    fitting = [r["tp"] for r in rows if r["model"] == model and r["channels"] == ch and r["fits"]]
    return min(fitting) if fitting else None


def test_fig7_min_tp_matches_paper():
    rows = compute_fig7()
    assert _min_tp(rows, "1.7B", 512) == 2
    assert _min_tp(rows, "1.7B", 1024) == 8
    assert _min_tp(rows, "7B", 256) == 4
    assert _min_tp(rows, "7B", 512) == 16


def test_fig7_channel_stage_dominates():
    rows = compute_fig7()
    high_c = [r for r in rows if r["channels"] >= 512 and r["fits"]]
    assert high_c and all(0.5 <= r["tok_agg_frac"] <= 0.95 for r in high_c)


def test_fig7_print_and_benchmark(benchmark):
    rows = benchmark(compute_fig7)
    table = [
        [
            r["model"],
            r["channels"],
            r["tp"],
            fmt_gb(r["total"]),
            f"{r['tok_agg_frac']:.0%}",
            "ok" if r["fits"] else "OOM",
        ]
        for r in rows
    ]
    print_table(
        "Fig. 7 — memory/GPU under TP",
        ["model", "C", "TP", "GB/GPU", "tok+agg", "fits"],
        table,
        note="paper: 1.7B needs TP2@512ch / TP8@1024ch; 7B needs TP4@256ch / "
        "TP16@512ch; tok+agg = 50-90% at large C",
    )
