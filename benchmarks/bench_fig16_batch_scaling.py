"""Figure 16 — sustained TFLOPs/sec vs global batch at 1,024 GCDs.

Paper: 7B model, real 500-channel hyperspectral data, 1,024 GCDs (128
Frontier nodes).  Baseline = TP16 + FSDP + DP with DP groups of two nodes
(replica = 16 GCDs); Hybrid D-CHAG = D-CHAG/TP within one node + DP across
nodes (replica = 8 GCDs).  The hybrid sustains >2× the baseline throughput
(headline: up to a 239 % TFLOPs/sec increase), because DP applies earlier
and the heavy communication stays inside the node.
"""

from figutils import print_table
from repro.perf import (
    ParallelPlan,
    frontier,
    named_model,
)
from repro.perf.throughput import global_batch_throughput

MACHINE = frontier()
MODEL = named_model("7B")
CHANNELS = 500
TOTAL_GPUS = 1024

BASELINE = ParallelPlan("tp", tp=16, dp=TOTAL_GPUS // 16)            # 2-node replicas
HYBRID = ParallelPlan("dchag", tp=8, dchag_kind="linear", dp=TOTAL_GPUS // 8)
GLOBAL_BATCHES = (512, 1024, 2048, 4096, 8192)


def compute_fig16():
    rows = []
    for gb in GLOBAL_BATCHES:
        base = global_batch_throughput(MODEL, CHANNELS, BASELINE, MACHINE, gb)
        hybrid = global_batch_throughput(MODEL, CHANNELS, HYBRID, MACHINE, gb)
        rows.append(
            {
                "global_batch": gb,
                "baseline_tflops": base,
                "hybrid_tflops": hybrid,
                "gain": hybrid / base - 1.0 if base > 0 else float("inf"),
            }
        )
    return rows


def test_fig16_hybrid_more_than_doubles_at_scale():
    """Paper: 'more than double the sustained throughput when scaling batch
    size' (up to +239 %)."""
    rows = compute_fig16()
    assert any(r["gain"] > 1.0 for r in rows), [round(r["gain"], 2) for r in rows]


def test_fig16_gain_positive_at_every_batch():
    assert all(r["gain"] > 0 for r in compute_fig16())


def test_fig16_throughput_monotone_in_batch():
    """Larger global batch amortizes fixed costs for both setups."""
    rows = compute_fig16()
    for key in ("baseline_tflops", "hybrid_tflops"):
        series = [r[key] for r in rows]
        assert all(b >= a * 0.99 for a, b in zip(series, series[1:]))


def test_fig16_gain_magnitude_in_paper_band():
    """Top gain within a factor ~2 of the paper's 239 %."""
    top = max(r["gain"] for r in compute_fig16())
    assert 1.0 < top < 5.0


def test_fig16_print_and_benchmark(benchmark):
    rows = benchmark(compute_fig16)
    table = [
        [
            r["global_batch"],
            f"{r['baseline_tflops']:.0f}",
            f"{r['hybrid_tflops']:.0f}",
            f"{r['gain']:+.0%}",
        ]
        for r in rows
    ]
    print_table(
        "Fig. 16 — TFLOP/s at 1,024 GCDs vs global batch (7B / 500ch)",
        ["global batch", "baseline (TP16+DP)", "Hybrid D-CHAG (TP8+DP)", "gain"],
        table,
        note="paper: >2x sustained throughput, up to +239%",
    )
