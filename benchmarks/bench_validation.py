"""Validation bench — the analytic models vs *measured* small-scale runs.

The figure benches rely on closed-form memory/FLOP models because the
paper's configurations (up to 26B parameters) cannot be allocated in NumPy.
This bench earns that trust: it runs real models under the live memory
tracker and FLOP counter and checks that the analytic formulas reproduce
the measured values (FLOPs exactly) and scaling shapes (memory):

* tokenization FLOPs: exact match;
* ViT block FLOPs: within 5 %;
* tokenizer activation memory: linear in channels (measured);
* attention score memory: quadratic in sequence length (measured) — the
  mechanism behind the aggregation module's quadratic channel cost;
* activation checkpointing: measured peak drops by the expected factor.
"""

import gc

import numpy as np
import pytest

from figutils import print_table
from repro.nn import MultiHeadSelfAttention, PatchTokenizer, ViTEncoder
from repro.perf import ModelConfig, ParallelPlan, Workload, estimate_flops
from repro.tensor import (
    MemoryTracker,
    Tensor,
    checkpoint_sequential,
    count_flops,
    track_memory,
)

RNG = np.random.default_rng(0)


def measured_peak(fn) -> int:
    gc.collect()
    tracker = MemoryTracker()
    with track_memory(tracker):
        fn()
    gc.collect()
    return tracker.peak_bytes


def test_tokenization_flops_exact():
    for channels in (4, 8, 16):
        cfg = ModelConfig("v", dim=32, depth=1, heads=4, patch=4, image_hw=(16, 16))
        tok = PatchTokenizer(channels, 4, 32, RNG)
        imgs = RNG.standard_normal((2, channels, 16, 16)).astype(np.float32)
        with count_flops() as counter:
            tok(imgs)
        analytic = estimate_flops(cfg, Workload(channels, 2)).tokenization
        assert counter.by_category["matmul"] == analytic


def test_vit_flops_within_5pct():
    cfg = ModelConfig("v", dim=48, depth=3, heads=4, patch=4, image_hw=(16, 16))
    enc = ViTEncoder(48, 3, 4, RNG)
    x = Tensor(RNG.standard_normal((2, cfg.tokens, 48)).astype(np.float32))
    with count_flops() as counter:
        enc(x)
    analytic = estimate_flops(cfg, Workload(4, 2)).transformer
    assert abs(counter.by_category["matmul"] - analytic) / analytic < 0.05


def test_tokenizer_memory_linear_in_channels():
    peaks = []
    for channels in (8, 16, 32):
        tok = PatchTokenizer(channels, 4, 32, np.random.default_rng(1))
        imgs = RNG.standard_normal((2, channels, 16, 16)).astype(np.float32)
        peaks.append(measured_peak(lambda: tok(imgs)))
    r1 = peaks[1] / peaks[0]
    r2 = peaks[2] / peaks[1]
    assert 1.6 < r1 < 2.4 and 1.6 < r2 < 2.4, peaks


def test_attention_scores_quadratic_in_sequence():
    """Doubling the attended sequence ~4×es the score memory — the
    structural reason channel aggregation dominates at high C (§3.2)."""
    mha = MultiHeadSelfAttention(32, 4, np.random.default_rng(2))

    def run(seq):
        x = Tensor(RNG.standard_normal((2, seq, 32)).astype(np.float32), requires_grad=True)
        out = mha(x)
        return out

    p64 = measured_peak(lambda: run(64))
    p128 = measured_peak(lambda: run(128))
    p256 = measured_peak(lambda: run(256))
    assert 2.8 < p128 / p64
    assert 3.2 < p256 / p128 < 4.6


def test_checkpointing_saves_measured_memory():
    enc = ViTEncoder(64, 4, 4, np.random.default_rng(3))
    x = RNG.standard_normal((4, 32, 64)).astype(np.float32)
    plain = measured_peak(lambda: enc(Tensor(x, requires_grad=True)))
    ck = measured_peak(
        lambda: checkpoint_sequential(list(enc.blocks), Tensor(x, requires_grad=True))
    )
    assert ck < 0.5 * plain


def test_dchag_measured_memory_below_replicated(benchmark):
    """End-to-end: per-rank measured peak of the D-CHAG channel stage is
    well below the replicated (TP-style) channel stage at the same size."""
    from repro.core import DCHAG, DCHAGConfig
    from repro.dist import run_spmd
    from repro.nn import ChannelCrossAttention

    C, IMG, P, D, H = 32, 16, 4, 32, 4
    imgs = RNG.standard_normal((2, C, IMG, IMG)).astype(np.float32)

    def replicated(comm):
        tracker = MemoryTracker()
        with track_memory(tracker):
            rng = np.random.default_rng(0)
            tok = PatchTokenizer(C, P, D, rng)
            agg = ChannelCrossAttention(D, H, rng)
            out = agg(tok(imgs))
            (out * out).mean().backward()
        return tracker.peak_bytes

    def dchag(comm):
        tracker = MemoryTracker()
        with track_memory(tracker):
            cfg = DCHAGConfig(channels=C, patch=P, dim=D, heads=H, kind="linear")
            model = DCHAG(comm, None, cfg)
            out = model(imgs)
            (out * out).mean().backward()
        return tracker.peak_bytes

    def run():
        rep = run_spmd(replicated, 4)[0]
        dc = max(run_spmd(dchag, 4))
        return rep, dc

    rep, dc = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Validation — measured channel-stage peak bytes per rank (4 ranks)",
        ["strategy", "peak bytes/rank"],
        [["replicated (TP-style)", rep], ["D-CHAG-L", dc]],
        note="live allocation tracker, real NumPy runs",
    )
    assert dc < 0.6 * rep
