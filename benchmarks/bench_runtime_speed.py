"""Tracked runtime-speed suite: the repo's perf trajectory, measured.

Times the three hot layers every figure and autotuner sweep runs through —

* ``step_replay_8`` / ``step_replay_32`` — one full training step's
  collective schedule replayed through a real 8-/32-rank SPMD world on an
  eager issue-queue clock (:func:`repro.perf.calibrate.measure_plan`): the
  per-candidate cost of the overlap oracle and the measured fig-15/16
  sweeps.  Payloads span 64 KiB TP AllReduces (rendezvous-bound) to
  multi-MiB FSDP gathers (copy-bound), so both the lock-light rendezvous
  and the zero-copy data path show up here.
* ``collective_churn`` — 200 small world AllReduces on 8 ranks: pure
  rendezvous overhead, no meaningful payload.
* ``eager_drain`` — an eager-phase schedule (charge → dispatch → drain)
  exercising the issue-queue clock engine and per-rank traffic buffers.
* ``sec62_search`` — the full §6.2 overlap-aware configuration search
  (7B / 500 channels / 1,024 GCDs, cold per-plan oracle) with bound-based
  pruning (``prune_top_k=3``), the autotuner's end-to-end cost: the time
  to produce the §6.2 podium with per-plan simulated overlaps.
* ``captured_replay`` — 100 training steps advanced through a captured
  8-rank schedule by the vectorized replay kernel
  (:func:`repro.perf.schedule.replay_many`, one lane — lowering included):
  no threads, no numpy payloads, no rendezvous, no per-step cursor walk.
  The result also records ``live_seconds`` (one threaded 100-step world)
  and ``speedup_vs_live`` — the replay engine's raison d'être.
* ``fleet_sweep`` — a 1000+-candidate multi-budget autotuner sweep priced
  entirely by vectorized replay from <= 4 captured stand-in worlds
  (:func:`repro.perf.autotune.sweep_replay`; see
  ``benchmarks/bench_fleet_sweep.py`` for the standalone version and the
  scalar-path yardstick).

Results are written as JSON (default ``BENCH_runtime.json`` at the repo
root).  The file keeps two snapshots: ``baseline`` (the pre-optimization
numbers, preserved across runs) and ``current`` (this run), plus the
per-benchmark speedups.  CI runs ``--smoke --check BENCH_runtime.json``:
fresh numbers are gated against the committed ``current`` values and the
job fails if **any** tracked benchmark regresses by more than
``--regression-tol`` (default 1.5×), probe-normalized across hosts.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

import numpy as np

from repro.dist import run_spmd
from repro.perf import frontier, named_model, search_configurations, simulated_overlaps
from repro.perf.calibrate import measure_plan
from repro.perf.clock import VirtualClock
from repro.perf.modelcfg import ModelConfig
from repro.perf.overlap import OVERLAP_PHASES
from repro.perf.plan import ParallelPlan, Workload
from repro.perf.schedule import ReplayVariant, replay_many

import bench_fleet_sweep

MACHINE = frontier()

#: Model for the step replays: 28 × 64 KiB TP AllReduces (rendezvous-bound)
#: plus 2.3–4.7 MiB FSDP/DP collectives (copy-bound) per step.
REPLAY_MODEL = ModelConfig("perf-replay", dim=256, depth=6, heads=8, patch=4, image_hw=(32, 32))
REPLAY_WORKLOAD = Workload(32, 2)
PLAN_8 = ParallelPlan("dchag", tp=2, fsdp=2, dp=2, dchag_kind="linear")
PLAN_32 = ParallelPlan("dchag", tp=2, fsdp=4, dp=4, dchag_kind="linear")

SEARCH_MODEL_NAME = "7B"
SEARCH_CHANNELS = 500
SEARCH_GPUS = 1024
SEARCH_BATCH = 4096
SEARCH_TOP_K = 3

#: Steady-state replay buffers, shared across benchmark repetitions.
_WORKSPACES: dict = {}

#: Steps the captured-replay benchmark advances per run (and the live
#: threaded run it is compared against).
REPLAY_STEPS = 100


def bench_step_replay(plan: ParallelPlan) -> None:
    ws = _WORKSPACES.setdefault(plan.label, {})
    measure_plan(REPLAY_MODEL, REPLAY_WORKLOAD, plan, MACHINE, eager=True, workspace=ws)


def bench_collective_churn() -> None:
    def fn(comm):
        buf = np.ones(64, dtype=np.float32)
        for _ in range(200):
            comm.all_reduce(buf)

    run_spmd(fn, 8)


def bench_eager_drain() -> None:
    clock = VirtualClock(MACHINE, eager_phases=OVERLAP_PHASES)

    def fn(comm):
        grad = np.ones(1 << 16, dtype=np.float32)  # 256 KiB buckets
        # Steady state: preallocated result buffers (the out= path).
        gather_out = [np.empty_like(grad) for _ in range(comm.size)]
        reduce_out = np.empty_like(grad)
        for _ in range(4):
            with comm.phase_scope("fsdp_gather"):
                comm.all_gather(grad, out=gather_out)
            comm.charge_compute(1e-3, phase="forward")
        for _ in range(12):
            comm.charge_compute(1e-3, phase="backward")
            with comm.phase_scope("dp_sync"):
                comm.all_reduce(grad, out=reduce_out)
        comm.drain_comm()

    run_spmd(fn, 8, clock=clock)


def bench_sec62_search() -> None:
    model = named_model(SEARCH_MODEL_NAME)
    oracle = simulated_overlaps(MACHINE, model, SEARCH_CHANNELS)
    results = search_configurations(
        model, SEARCH_CHANNELS, SEARCH_GPUS, MACHINE, SEARCH_BATCH,
        overlaps=oracle, prune_top_k=SEARCH_TOP_K,
    )
    assert results and results[0].plan.strategy == "dchag"


def _time(fn, repeats: int, warmup: int = 1) -> dict:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {
        "seconds": statistics.median(samples),
        "min_seconds": min(samples),
        "repeats": repeats,
    }


def run_suite(smoke: bool) -> dict:
    repeats = 3 if smoke else 7
    # Capture the 8-rank schedule once (untimed): the benchmark measures the
    # replay engine, not the one-off threaded recording.
    captured = measure_plan(
        REPLAY_MODEL, REPLAY_WORKLOAD, PLAN_8, MACHINE, eager=True,
        workspace=_WORKSPACES.setdefault(PLAN_8.label, {}), capture=True,
    ).schedule
    suite = {
        "step_replay_8": lambda: bench_step_replay(PLAN_8),
        "step_replay_32": lambda: bench_step_replay(PLAN_32),
        "collective_churn": bench_collective_churn,
        "eager_drain": bench_eager_drain,
        "sec62_search": bench_sec62_search,
        "captured_replay": lambda: replay_many(
            captured, [ReplayVariant(machine=MACHINE)], n_steps=REPLAY_STEPS
        ),
        "fleet_sweep": bench_fleet_sweep.fleet_sweep_once,
    }
    results = {}
    for name, fn in suite.items():
        r = repeats if name not in ("sec62_search", "fleet_sweep") else max(2, repeats - 1)
        results[name] = _time(fn, r)
        print(f"{name:<18} {results[name]['seconds'] * 1e3:9.2f} ms  "
              f"(min {results[name]['min_seconds'] * 1e3:.2f} ms, {r} runs)")
    # One live threaded run of the same step count, timed once: the
    # yardstick for the replay engine's speedup (not a tracked benchmark —
    # it is exactly REPLAY_STEPS x step_replay_8's inner loop).
    t0 = time.perf_counter()
    measure_plan(
        REPLAY_MODEL, REPLAY_WORKLOAD, PLAN_8, MACHINE, eager=True,
        workspace=_WORKSPACES.setdefault(PLAN_8.label, {}),
        n_steps=REPLAY_STEPS,
    )
    live = time.perf_counter() - t0
    cr = results["captured_replay"]
    cr["replay_steps"] = REPLAY_STEPS
    cr["live_seconds"] = live
    cr["speedup_vs_live"] = round(live / cr["seconds"], 2)
    print(f"{'captured_replay':<18} {cr['speedup_vs_live']:9.2f}x vs live "
          f"({live * 1e3:.2f} ms threaded for {REPLAY_STEPS} steps)")
    # Fleet-sweep shape metadata plus its own yardstick: the scalar
    # per-budget search path, timed once (not a tracked benchmark).
    fs = results["fleet_sweep"]
    sweep = bench_fleet_sweep.fleet_sweep_once()
    fs["budgets"] = len(bench_fleet_sweep.FLEET_BUDGETS)
    fs["candidates"] = sweep.candidates
    fs["captured_worlds"] = sweep.captured_worlds
    fs["replay_lanes"] = sweep.lanes
    fs["scalar_seconds"] = bench_fleet_sweep.scalar_baseline_seconds()
    fs["speedup_vs_scalar"] = round(fs["scalar_seconds"] / fs["seconds"], 2)
    print(f"{'fleet_sweep':<18} {fs['speedup_vs_scalar']:9.2f}x vs scalar "
          f"({fs['scalar_seconds'] * 1e3:.2f} ms for {fs['candidates']} "
          f"candidates over {fs['budgets']} budgets)")
    return results


def _host() -> dict:
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
    }


def host_probe_seconds() -> float:
    """A hardware score for cross-host gate normalization.

    The step replay's cost is a mix of bulk memory passes and thread
    wake-ups, so the probe times both: a fixed numpy copy+add workload and
    a two-thread event ping-pong.  Gating on (benchmark / probe) compares
    hosts by what the runtime actually stresses, instead of failing CI
    because its runner is simply slower than the machine that committed
    the snapshot.
    """
    import threading

    a = np.ones(4_739_072, dtype=np.uint8)
    b = np.empty_like(a)
    t0 = time.perf_counter()
    for _ in range(10):
        np.copyto(b, a)
        np.add(a, b, out=b)
    mem = time.perf_counter() - t0

    ping, pong = threading.Event(), threading.Event()
    rounds = 1000

    def responder():
        for _ in range(rounds):
            ping.wait()
            ping.clear()
            pong.set()

    t = threading.Thread(target=responder, daemon=True)
    t.start()
    t0 = time.perf_counter()
    for _ in range(rounds):
        ping.set()
        pong.wait()
        pong.clear()
    switch = time.perf_counter() - t0
    t.join()
    return mem + switch


def check_regression(current: dict, probe: float, committed_path: Path, tol: float) -> int:
    """Gate fresh numbers against the committed ``current`` snapshot.

    Every benchmark present in both snapshots is gated — the job fails if
    ANY of them regresses past ``tol``, not just the step replay.  When
    both snapshots carry a host probe, the gate compares probe-normalized
    times (benchmark seconds per probe second), so a slower CI runner does
    not read as a code regression; legacy snapshots without a probe fall
    back to raw seconds.
    """
    doc = json.loads(committed_path.read_text())
    committed = doc["current"]
    pinned_probe = doc.get("host_probe_seconds", 0.0)
    normalized = probe > 0 and pinned_probe > 0
    basis = (
        f"probe-normalized (host probe {probe * 1e3:.1f} ms vs committed "
        f"{pinned_probe * 1e3:.1f} ms)"
        if normalized
        else "raw seconds (no probe in committed snapshot)"
    )
    print(f"regression gate [{basis}], tol {tol:.2f}x:")
    failures = 0
    for gate in sorted(set(current) & set(committed)):
        fresh = current[gate]["seconds"]
        pinned = committed[gate]["seconds"]
        if normalized:
            ratio = (fresh / probe) / (pinned / pinned_probe)
        else:
            ratio = fresh / pinned if pinned > 0 else float("inf")
        status = "ok" if ratio <= tol else "REGRESSION"
        failures += 0 if ratio <= tol else 1
        print(f"  {gate:<18} {fresh * 1e3:9.2f} ms vs committed "
              f"{pinned * 1e3:9.2f} ms ({ratio:.2f}x) -> {status}")
    return 0 if failures == 0 else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="fewer repeats (CI)")
    parser.add_argument("--out", default=str(Path(__file__).resolve().parent.parent / "BENCH_runtime.json"),
                        help="where to write the JSON trajectory")
    parser.add_argument("--baseline", action="store_true",
                        help="record this run as the baseline snapshot too")
    parser.add_argument("--check", metavar="PATH", default=None,
                        help="gate against the committed snapshot at PATH (CI)")
    parser.add_argument("--regression-tol", type=float, default=1.5,
                        help="max allowed slowdown vs committed, any benchmark (default 1.5x)")
    parser.add_argument("--store", metavar="PATH", default=None,
                        help="also persist this run into a repro.obs sweep store")
    args = parser.parse_args(argv)

    results = run_suite(args.smoke)
    probe = host_probe_seconds()

    if args.store:
        from repro.obs.store import SweepStore

        with SweepStore(args.store) as sweep_store:
            run_id = sweep_store.record_run(
                "bench", "runtime_speed", machine=MACHINE.name,
                host=platform.platform(), params={"smoke": args.smoke},
            )
            for name, r in results.items():
                sweep_store.record_metric(run_id, name, r["seconds"], unit="s",
                                          source="bench")
                sweep_store.record_metric(run_id, f"{name}/min", r["min_seconds"],
                                          unit="s", source="bench")
            sweep_store.record_metric(run_id, "host_probe_seconds", probe, unit="s",
                                      source="bench")
            cr = results.get("captured_replay", {})
            if "speedup_vs_live" in cr:
                sweep_store.record_metric(run_id, "captured_replay/speedup_vs_live",
                                          cr["speedup_vs_live"], source="bench")
            print(f"stored as run {run_id} in {args.store}")

    out = Path(args.out)
    doc = {"suite": "bench_runtime_speed", "host": _host(), "host_probe_seconds": probe}
    if out.exists() and not args.baseline:
        prior = json.loads(out.read_text())
        doc["baseline"] = prior.get("baseline", prior.get("current", results))
    else:
        doc["baseline"] = results
    doc["current"] = results
    doc["speedup"] = {
        name: round(doc["baseline"][name]["seconds"] / results[name]["seconds"], 2)
        for name in results
        if name in doc["baseline"] and results[name]["seconds"] > 0
    }
    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out}")
    for name, s in doc["speedup"].items():
        print(f"  {name:<18} {s:5.2f}x vs baseline")

    if args.check:
        return check_regression(results, probe, Path(args.check), args.regression_tol)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
