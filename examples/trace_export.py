#!/usr/bin/env python
"""Export a Chrome trace and a per-link comm-volume report from a training run.

The observability walkthrough, end to end:

1. Train a small FSDP × DP hybrid world for a few steps on an **eager
   issue-queue** :class:`~repro.perf.VirtualClock` — FSDP gathers prefetch
   under forward compute, DP AllReduces dispatch during backward, exposure
   settles at the drain.
2. Lower the world's per-rank timelines to Chrome Trace Event JSON
   (:func:`repro.obs.export_trace`) — open the file at
   https://ui.perfetto.dev to see one track per rank: compute spans, the
   serial comm channel, flows tying each collective across ranks, and
   cumulative exposed/wire counters.
3. Print the per-link volume report: measured traffic per
   ``op × phase × link`` plus the exposed/hidden split the trace renders.
4. Persist the run into a sweep store and query it back.

Run:  python examples/trace_export.py [--steps 3] [--out step.trace.json]
"""

import argparse
import tempfile
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.dist import average_gradients, run_spmd_world
from repro.nn import ViTEncoder
from repro.parallel import DeviceMesh, FSDPModel, shard_batch
from repro.perf import OVERLAP_PHASES, CostModel, VirtualClock, frontier
from repro.obs import SweepStore, export_trace, validate_trace
from repro.tensor import AdamW, Tensor

DIM, DEPTH, HEADS, TOKENS = 16, 2, 4, 5


def parse_args() -> argparse.Namespace:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--steps", type=int, default=3)
    ap.add_argument("--fsdp", type=int, default=2)
    ap.add_argument("--dp", type=int, default=2)
    ap.add_argument("--batch", type=int, default=4, help="global batch")
    ap.add_argument("--out", default=None, help="trace JSON path (default: temp dir)")
    return ap.parse_args()


def main() -> None:
    args = parse_args()
    world_size = args.fsdp * args.dp
    # FSDP groups fit inside a simulated node; DP crosses nodes, so the
    # report shows both link classes.
    machine = replace(frontier(), gpus_per_node=args.fsdp)
    cost = CostModel(machine)
    x = np.random.default_rng(7).standard_normal(
        (args.batch, TOKENS, DIM)
    ).astype(np.float32)
    block_flops = 2 * (args.batch // args.dp) * TOKENS * 12 * DIM * DIM
    # Compute-rich regime (scaled-up block cost) so the trace shows real
    # overlap: in-flight windows outliving their dispatch point.
    unit_seconds = 1e4 * cost.compute_seconds(block_flops)

    def train(comm):
        mesh = DeviceMesh(comm, tp=1, fsdp=args.fsdp, dp=args.dp)
        enc = ViTEncoder(DIM, DEPTH, HEADS, np.random.default_rng(0))
        model = FSDPModel(
            comm, mesh.fsdp_group, enc,
            units=[b for b in enc.blocks], unit_seconds=unit_seconds,
        )
        opt = AdamW(model.shard_parameters(), lr=1e-3)
        local = shard_batch(x, comm, mesh.dp_group)
        for _ in range(args.steps):
            loss = (model(Tensor(local)) ** 2).mean()
            loss.backward()
            comm.charge_compute(2 * DEPTH * unit_seconds, phase="backward")
            with comm.phase_scope("dp_sync"):
                average_gradients(comm, model.shard_parameters(), group=mesh.dp_group)
            opt.step()
            for p in model.shard_parameters():
                p.grad = None
        return comm.now()

    # -- 1. the eager training run ----------------------------------------
    clock = VirtualClock(machine, eager_phases=OVERLAP_PHASES)
    _, world = run_spmd_world(train, world_size, clock=clock)
    print(f"world={world_size} (fsdp={args.fsdp} × dp={args.dp}), "
          f"{args.steps} steps, virtual makespan {clock.elapsed() * 1e6:.1f} µs, "
          f"exposed comm {clock.exposed_seconds(rank=0) * 1e6:.1f} µs on rank 0")

    # -- 2. lower the timelines to a Chrome trace -------------------------
    out = Path(args.out) if args.out else Path(tempfile.mkdtemp()) / "step.trace.json"
    trace = export_trace(world, out, label=f"fsdp{args.fsdp}-dp{args.dp} training")
    problems = validate_trace(trace)
    if problems:
        raise SystemExit("invalid trace: " + "; ".join(problems))
    print(f"\nwrote {len(trace['traceEvents'])} trace events -> {out}")
    print("open it at https://ui.perfetto.dev (one process per rank; flows tie "
          "each collective across ranks)")

    # -- 3. the per-link volume report ------------------------------------
    # Simulated volumes straight off the clock's books: wire bytes and α–β
    # busy seconds per (op, phase, link) — exactly what the counter tracks
    # in the exported trace accumulate.
    print("\nrank-0 comm volume (simulated books):")
    print(f"  {'op':<16}{'phase':<14}{'link':<8}{'n':>4}{'wire bytes':>12}{'busy µs':>10}")
    for (op, phase, intra), (n, wire, busy) in sorted(clock.comm_volumes(rank=0).items()):
        link = "intra" if intra else "inter"
        print(f"  {op:<16}{phase:<14}{link:<8}{n:>4}{wire:>12,}{busy * 1e6:>10.2f}")
    measured_wire = world.traffic.wire_bytes(rank=0)
    simulated_wire = sum(w for _, w, _ in clock.comm_volumes(rank=0).values())
    print(f"  measured traffic-log total: {measured_wire:,} B "
          f"(simulated books: {simulated_wire:,} B)")
    if measured_wire != simulated_wire:
        raise SystemExit("wire books disagree: traffic log vs clock intervals")

    # -- 4. persist and query the sweep store -----------------------------
    with SweepStore(out.with_suffix(".db")) as store:
        run_id = store.record_run(
            "example", "trace_export", machine=machine.name,
            params={"steps": args.steps, "world_size": world_size},
        )
        store.record_trace(run_id, out.name, trace)
        store.record_metric(run_id, "wire_bytes", measured_wire, unit="B",
                            source="measured")
        store.record_metric(run_id, "exposed_seconds",
                            clock.exposed_seconds(rank=0), unit="s")
        latest = store.latest_run(kind="example")
        print(f"\nsweep store: {latest.summary}, "
              f"traces {store.trace_names(run_id)}")
    print("OK: trace valid, wire books agree, run persisted")


if __name__ == "__main__":
    main()
