#!/usr/bin/env python
"""Self-supervised MAE pre-training on hyperspectral plant images (paper §5.1).

Reproduces the Fig. 11 experiment end to end at laptop scale: a masked
autoencoder over synthetic APPL-like Poplar imagery (real set: 494 images ×
500 VNIR bands), trained twice —

* baseline: serial model, one rank;
* D-CHAG-L: distributed channel stage on two simulated ranks, linear partial
  aggregation, cross-attention final layer (the paper's best variant).

Prints the two loss curves side by side and reports the masked-patch
reconstruction RMSE of the D-CHAG model.

Run:  python examples/hyperspectral_mae.py [--channels 32] [--steps 30]
"""

import argparse

import numpy as np

from repro.core import DCHAG, DCHAGConfig
from repro.data import HyperspectralConfig, HyperspectralDataset, pseudo_rgb
from repro.dist import run_spmd
from repro.models import MAEModel, build_serial_mae
from repro.nn import ViTEncoder
from repro.train import TrainConfig, Trainer, masked_reconstruction_rmse


def parse_args() -> argparse.Namespace:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--channels", type=int, default=32, help="spectral bands (paper: 500)")
    ap.add_argument("--image", type=int, default=16, help="image size")
    ap.add_argument("--patch", type=int, default=4)
    ap.add_argument("--dim", type=int, default=48)
    ap.add_argument("--depth", type=int, default=2)
    ap.add_argument("--heads", type=int, default=4)
    ap.add_argument("--steps", type=int, default=30)
    ap.add_argument("--batch", type=int, default=8, help="paper's batch size: 8")
    ap.add_argument("--ranks", type=int, default=2, help="simulated GPUs for D-CHAG (paper: 2)")
    ap.add_argument("--mask-ratio", type=float, default=0.75)
    return ap.parse_args()


def main() -> None:
    args = parse_args()
    ds = HyperspectralDataset(
        HyperspectralConfig(
            channels=args.channels, height=args.image, width=args.image, n_images=32, seed=4
        )
    )
    batch = ds.batch(range(args.batch))
    print(f"synthetic APPL: {len(ds)} images x {args.channels} bands "
          f"({ds.library.wavelengths_nm[0]:.0f}-{ds.library.wavelengths_nm[-1]:.0f} nm)")

    # ---- baseline (1 rank) -------------------------------------------------
    serial = build_serial_mae(
        channels=args.channels, image=args.image, patch=args.patch, dim=args.dim,
        depth=args.depth, heads=args.heads, rng=np.random.default_rng(0),
        mask_ratio=args.mask_ratio, agg="cross",
    )
    tr = Trainer(serial, TrainConfig(lr=3e-3, total_steps=args.steps, warmup_steps=3))
    base_losses = [tr.step(batch, np.random.default_rng(900 + i)) for i in range(args.steps)]

    # ---- D-CHAG-L (args.ranks ranks) ----------------------------------------
    def train_dchag(comm):
        cfg = DCHAGConfig(
            channels=args.channels, patch=args.patch, dim=args.dim,
            heads=args.heads, kind="linear",
        )
        frontend = DCHAG(comm, None, cfg, rng_seed=2)
        shared = np.random.default_rng(0)
        model = MAEModel(
            frontend, ViTEncoder(args.dim, args.depth, args.heads, shared),
            num_tokens=(args.image // args.patch) ** 2, dim=args.dim,
            patch=args.patch, out_channels=args.channels, rng=shared,
            mask_ratio=args.mask_ratio, decoder_depth=2,
        )
        t = Trainer(model, TrainConfig(lr=3e-3, total_steps=args.steps, warmup_steps=3))
        losses = [t.step(batch, np.random.default_rng(900 + i)) for i in range(args.steps)]
        pred, keep, mask = model(batch, np.random.default_rng(1))
        target = model.reconstruction_target(batch)
        rmse = masked_reconstruction_rmse(pred.data, target, mask)
        recon = model.reconstruct(batch[:1], np.random.default_rng(1))
        return losses, rmse, recon

    results = run_spmd(train_dchag, args.ranks)
    dchag_losses, rmse, recon = results[0]

    # ---- report --------------------------------------------------------------
    print(f"\n{'iter':>6}  {'baseline':>10}  {'D-CHAG-L':>10}")
    stride = max(1, args.steps // 12)
    for i in range(0, args.steps, stride):
        print(f"{i:>6}  {base_losses[i]:>10.4f}  {dchag_losses[i]:>10.4f}")
    print(f"{args.steps - 1:>6}  {base_losses[-1]:>10.4f}  {dchag_losses[-1]:>10.4f}")
    gap = abs(dchag_losses[-1] - base_losses[-1]) / base_losses[-1]
    print(f"\nfinal-loss gap: {gap:.1%} (paper Fig. 11: curves overlap)")
    print(f"masked-patch reconstruction RMSE (D-CHAG): {rmse:.4f}")
    rgb = pseudo_rgb(recon[0], ds.library)
    print(f"pseudo-RGB reconstruction rendered: {rgb.shape}, range "
          f"[{rgb.min():.2f}, {rgb.max():.2f}] (paper Fig. 11 right panel)")


if __name__ == "__main__":
    main()
