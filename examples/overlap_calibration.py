#!/usr/bin/env python
"""Derive comm/compute overlap fractions from a virtual-clock training run.

The analytic model's ``dp_overlap=0.8`` / ``fsdp_overlap=0.5`` used to be
assumptions.  This example shows the full derived workflow:

1. Train a real FSDP × DP hybrid world under ``run_spmd(...,
   clock=VirtualClock(machine))`` — every collective advances deterministic
   per-rank simulated timelines, and the parallel wrappers charge compute
   intervals alongside.
2. Derive the overlap fractions from those timelines
   (:func:`repro.perf.derive_overlaps`) instead of assuming them.
3. Feed them back into :func:`repro.perf.estimate_step_comm` and compare
   against the assumed constants for the paper's 7B hybrid plan.
4. Run the calibration harness: measured wire bytes must equal the shared
   CostModel's predictions exactly for every ring collective.

Run:  python examples/overlap_calibration.py [--steps 3]
"""

import argparse
from dataclasses import replace

import numpy as np

from repro.dist import average_gradients, run_spmd_world
from repro.nn import ViTEncoder
from repro.parallel import DeviceMesh, FSDPModel, shard_batch
from repro.perf import (
    CostModel,
    ParallelPlan,
    VirtualClock,
    Workload,
    derive_overlaps,
    estimate_step_comm,
    frontier,
    named_model,
)
from repro.perf.calibrate import calibrate
from repro.tensor import AdamW, Tensor

DIM, DEPTH, HEADS, TOKENS = 16, 2, 4, 5


def parse_args() -> argparse.Namespace:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--steps", type=int, default=3)
    ap.add_argument("--fsdp", type=int, default=2)
    ap.add_argument("--dp", type=int, default=2)
    ap.add_argument("--batch", type=int, default=4, help="global batch")
    return ap.parse_args()


def main() -> None:
    args = parse_args()
    world_size = args.fsdp * args.dp
    # FSDP groups fit inside a simulated node; DP crosses nodes.
    machine = replace(frontier(), gpus_per_node=args.fsdp)
    cost = CostModel(machine)
    x = np.random.default_rng(7).standard_normal(
        (args.batch, TOKENS, DIM)
    ).astype(np.float32)
    # GEMM-dominated per-block forward cost: B·N·12·D² MACs, 2 FLOPs each.
    block_flops = 2 * (args.batch // args.dp) * TOKENS * 12 * DIM * DIM
    base_unit_seconds = cost.compute_seconds(block_flops)

    def train(comm, unit_seconds):
        mesh = DeviceMesh(comm, tp=1, fsdp=args.fsdp, dp=args.dp)
        enc = ViTEncoder(DIM, DEPTH, HEADS, np.random.default_rng(0))
        model = FSDPModel(
            comm,
            mesh.fsdp_group,
            enc,
            units=[b for b in enc.blocks],
            unit_seconds=unit_seconds,
        )
        opt = AdamW(model.shard_parameters(), lr=1e-3)
        local = shard_batch(x, comm, mesh.dp_group)
        for _ in range(args.steps):
            loss = (model(Tensor(local)) ** 2).mean()
            loss.backward()
            # Backward compute ≈ 2× forward (the wrappers' convention).
            comm.charge_compute(2 * DEPTH * unit_seconds, phase="backward")
            with comm.phase_scope("dp_sync"):
                average_gradients(comm, model.shard_parameters(), group=mesh.dp_group)
            opt.step()
            for p in model.shard_parameters():
                p.grad = None
        return comm.now()

    clock = VirtualClock(machine)
    results, world = run_spmd_world(train, world_size, base_unit_seconds, clock=clock)
    print(f"world={world_size} (fsdp={args.fsdp} × dp={args.dp}), "
          f"{args.steps} steps, virtual makespan {clock.elapsed() * 1e6:.1f} µs")
    assert all(abs(t - results[0]) < 1e-12 for t in results), "timelines must agree"

    # -- 2. derive the overlap fractions from the rank timelines ----------
    # The toy model is latency-bound (compute ≪ comm), so little can hide;
    # a compute-rich model (block compute scaled up, same traffic) hides
    # everything.  Both fractions are *derived*, not assumed.
    derived = derive_overlaps(world)
    _, rich_world = run_spmd_world(
        train, world_size, 1e4 * base_unit_seconds, clock=VirtualClock(machine)
    )
    rich = derive_overlaps(rich_world)
    print("\nderived overlap fractions (assumed: dp 0.80, fsdp 0.50):")
    for name, rep, rich_rep in (("dp", derived.dp, rich.dp), ("fsdp", derived.fsdp, rich.fsdp)):
        print(f"  {name:<5} comm {rep.comm_seconds * 1e6:8.2f} µs  "
              f"hideable compute {rep.compute_seconds * 1e6:8.2f} µs  "
              f"→ overlap {rep.overlap:.2f} (compute-rich regime: {rich_rep.overlap:.2f})")

    # -- 2b. the schedule-accurate (issue-queue) derivation ---------------
    # The fractions above are the eager *bound* min(comm, compute)/comm.
    # Re-running the same program on an issue-queue clock actually
    # simulates the overlapped schedule — DP AllReduces dispatched into
    # per-rank channels, hidden under whatever compute follows, exposure
    # settled at the drain — and the derivation switches to measured
    # per-bucket exposure.
    from repro.perf import OVERLAP_PHASES, derive_bucket_exposures

    eager_clock = VirtualClock(machine, eager_phases=OVERLAP_PHASES)
    _, eager_world = run_spmd_world(
        train, world_size, 1e4 * base_unit_seconds, clock=eager_clock
    )
    measured = derive_overlaps(eager_world)
    print(f"\nissue-queue run: dp overlap {measured.dp_overlap:.2f} "
          f"(source: {measured.dp.source}), makespan "
          f"{eager_clock.elapsed() * 1e6:.1f} µs")
    for b in derive_bucket_exposures(eager_world, "dp_sync")[:4]:
        print(f"  dp bucket {b.index}: cost {b.comm_seconds * 1e6:6.2f} µs, "
              f"exposed {b.exposed_seconds * 1e6:6.2f} µs "
              f"→ hidden {b.hidden_fraction:.2f}")

    # -- 3. feed them into the analytic model -----------------------------
    model7b = named_model("7B")
    plan = ParallelPlan("dchag", tp=8, dchag_kind="linear", fsdp=2, dp=4)
    workload = Workload(500, 8)
    assumed = estimate_step_comm(model7b, workload, plan, frontier())
    fitted = estimate_step_comm(model7b, workload, plan, frontier(), overlaps=derived)
    print(f"\n7B {plan.label} step comm, assumed overlaps: "
          f"{assumed.total * 1e3:.2f} ms (fsdp {assumed.fsdp_time * 1e3:.2f}, "
          f"dp {assumed.dp_time * 1e3:.2f})")
    print(f"7B {plan.label} step comm, derived overlaps: "
          f"{fitted.total * 1e3:.2f} ms (fsdp {fitted.fsdp_time * 1e3:.2f}, "
          f"dp {fitted.dp_time * 1e3:.2f})")

    # -- 4. the analytic/measured contract --------------------------------
    report = calibrate(world_sizes=(2, 4), machine=machine)
    exact = sum(1 for r in report.rows if r.wire_match)
    print(f"\ncalibration: {exact}/{len(report.rows)} op/placement combos "
          f"wire-exact, max time residual {report.max_time_residual:.1e}")
    if not report.ok:
        raise SystemExit("calibration failed: measured traffic diverges from CostModel")
    print("OK: measured wire bytes match the CostModel exactly")


if __name__ == "__main__":
    main()
