#!/usr/bin/env python
"""Elastic fault-tolerant training: survive a rank loss AND a rank return.

The scenario the ROADMAP calls the fault-tolerance workload: an FSDP-sharded
MAE trains on simulated ranks, checkpointing in shards (one file per rank
plus a manifest) every few steps.  A scripted failure then kills one rank
mid-training — exactly what a real GPU loss looks like to the runtime — and
the :class:`~repro.elastic.ElasticSupervisor`

1. catches the world abort,
2. shrinks the world by the dead rank,
3. reshards the last complete checkpoint to the surviving world size
   (pure data movement — bitwise, optimizer moments included),
4. resumes mid-schedule.

A few steps later the "repaired host" comes back: a scripted
:class:`~repro.elastic.RankArrival` makes the supervisor checkpoint the
shrunken world, reshard *up*, and resume at full width — the same pure data
movement, run in the other direction.

The demo proves both transitions are *semantically free*: the elastic run's
loss trajectory (through a shrink and a grow) matches an uninterrupted run
of the same schedule, because FSDP's math is independent of how the flat
parameters are sharded.

Run:  python examples/elastic_training.py [--world 4] [--kill-step 7] \\
          [--rejoin-step 9]
"""

import argparse

import numpy as np

from repro.elastic import ElasticSupervisor, FailurePlan, fsdp_training_segment
from repro.models import build_serial_mae
from repro.train import TrainConfig

C, IMG, P, D, HEADS, DEPTH = 8, 16, 4, 32, 4, 2


def parse_args() -> argparse.Namespace:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--world", type=int, default=4, help="initial FSDP world size")
    ap.add_argument("--steps", type=int, default=12)
    ap.add_argument("--checkpoint-every", type=int, default=3)
    ap.add_argument("--kill-rank", type=int, default=2)
    ap.add_argument("--kill-step", type=int, default=7)
    ap.add_argument(
        "--rejoin-step", type=int, default=None,
        help="step at which the lost rank returns (grow path); omit to skip",
    )
    ap.add_argument("--ckpt-dir", default=None, help="checkpoint root (default: tempdir)")
    return ap.parse_args()


def main() -> None:
    args = parse_args()
    if args.ckpt_dir is None:
        import tempfile

        root = tempfile.mkdtemp(prefix="elastic_ckpt_")
    else:
        root = args.ckpt_dir

    def module_factory():
        return build_serial_mae(
            channels=C, image=IMG, patch=P, dim=D, depth=DEPTH, heads=HEADS,
            rng=np.random.default_rng(0), mask_ratio=0.5,
        )

    images = np.random.default_rng(5).standard_normal((4, C, IMG, IMG)).astype(np.float32)

    def batch_fn(step):
        # Step-indexed masking RNG: every world size (and every restart)
        # masks identically at a given step.
        return images, np.random.default_rng(900 + step)

    config = TrainConfig(
        lr=3e-3, total_steps=args.steps, warmup_steps=2,
        checkpoint_every=args.checkpoint_every,
    )

    def run(tag, world, plan, ckpt_root):
        segment = fsdp_training_segment(module_factory, batch_fn, config, ckpt_root)
        sup = ElasticSupervisor(segment, ckpt_root, world, timeout=120)
        res = sup.run(args.steps, failure_plan=plan)
        print(f"[{tag}] world sizes per step: {res.world_sizes}")
        print(f"[{tag}] loss: {res.losses[0]:.4f} -> {res.final_loss:.4f} "
              f"over {len(res.losses)} steps ({res.attempts} attempt(s))")
        return res

    plan = FailurePlan.kill(args.kill_rank, args.kill_step, "simulated GPU loss")
    if args.rejoin_step is not None:
        plan = plan.rejoin(args.rejoin_step, message="host repaired")
        print(f"=== elastic run: kill rank {args.kill_rank} at step "
              f"{args.kill_step}, rank returns at step {args.rejoin_step} ===")
    else:
        print(f"=== elastic run: kill rank {args.kill_rank} "
              f"at step {args.kill_step} ===")
    res = run("elastic", args.world, plan, f"{root}/elastic")
    for ev in res.recoveries:
        if ev.kind == "grow":
            print(
                f"[elastic] grow: rank returned before step {ev.failed_step}; "
                f"resharded {ev.old_world_size}->{ev.new_world_size} wide and "
                f"resumed from step {ev.resume_step} "
                f"({ev.reshard_bytes / 1024:.1f} KiB resharded)"
            )
        else:
            print(
                f"[elastic] {ev.kind}: rank {ev.failed_rank} died at step "
                f"{ev.failed_step}; resumed {ev.old_world_size}->"
                f"{ev.new_world_size} wide from step {ev.resume_step} "
                f"({ev.steps_lost} step(s) lost, "
                f"{ev.reshard_bytes / 1024:.1f} KiB resharded)"
            )
    if args.rejoin_step is not None:
        kinds = [ev.kind for ev in res.recoveries]
        assert kinds == ["shrink", "grow"], kinds
        assert res.world_sizes[-1] == args.world, res.world_sizes

    print(f"=== uninterrupted baseline (same schedule, {args.world} ranks) ===")
    base = run("baseline", args.world, None, f"{root}/baseline")

    drift = float(np.max(np.abs(np.asarray(res.losses) - np.asarray(base.losses))))
    print(f"max |elastic - baseline| over the trajectory: {drift:.2e}")
    assert np.allclose(res.losses, base.losses, rtol=1e-4, atol=1e-6), (
        "elastic trajectory diverged from the uninterrupted baseline"
    )
    print("OK: recovery preserved the loss trajectory "
          f"(final {res.final_loss:.6f} vs baseline {base.final_loss:.6f})")


if __name__ == "__main__":
    main()
