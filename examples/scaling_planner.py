#!/usr/bin/env python
"""Capacity planning for multi-channel FMs on Frontier (paper §§4, 6).

A downstream-user workflow built on the analytic models: given a model size
and channel count, find

1. whether FSDP alone suffices (then prefer it, §4.3);
2. the minimum TP degree for the TP-only baseline;
3. the best D-CHAG configuration (tree fanout, -L vs -C) and its gain;
4. the hybrid layout (D-CHAG+TP within a node, DP across) and projected
   sustained TFLOPs/sec at a target GPU count.

Run:  python examples/scaling_planner.py --model 7B --channels 500 --gpus 1024
"""

import argparse

from repro.core import plan_channel_stage
from repro.perf import (
    ParallelPlan,
    Workload,
    estimate_memory,
    frontier,
    max_batch_per_replica,
    named_model,
    sustained_estimate,
    throughput_gain,
)
from repro.perf.throughput import global_batch_throughput


def parse_args() -> argparse.Namespace:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--model", default="7B", help="named size: 100M..26B")
    ap.add_argument("--channels", type=int, default=500)
    ap.add_argument("--gpus", type=int, default=1024)
    ap.add_argument("--global-batch", type=int, default=4096)
    return ap.parse_args()


def main() -> None:
    args = parse_args()
    machine = frontier()
    model = named_model(args.model)
    gb = 1024**3
    print(f"planning {args.model} (dim {model.dim}, depth {model.depth}) "
          f"with {args.channels} channels on {machine.name} ({args.gpus} GCDs)\n")

    # 1. Is FSDP alone enough? (§4.3: prefer scaling the batch dimension)
    for fsdp in (2, 4, 8):
        plan = ParallelPlan("tp", fsdp=fsdp)
        if max_batch_per_replica(model, args.channels, plan, machine) > 0:
            print(f"FSDP-only: fits with fsdp={fsdp} "
                  f"({estimate_memory(model, Workload(args.channels, 1), plan).total / gb:.1f} GB/GPU at B=1)")
            break
    else:
        print("FSDP-only: does not fit on a node — model parallelism required")

    # 2. Minimum TP for the baseline.
    min_tp = None
    for tp in (1, 2, 4, 8, 16, 32, 64):
        if max_batch_per_replica(model, args.channels, ParallelPlan("tp", tp=tp), machine) > 0:
            min_tp = tp
            break
    if min_tp is None:
        print("TP-only: cannot fit at any degree (the Fig. 14 regime)")
        tp_for_dchag = min(machine.gpus_per_node, args.gpus)
    else:
        nodes = machine.nodes_for(min_tp)
        print(f"TP-only baseline: minimum TP{min_tp} ({nodes} node{'s'[:nodes > 1]})")
        tp_for_dchag = min_tp

    # 3. Best D-CHAG configuration at the same degree (kept intra-node).
    tp_for_dchag = min(tp_for_dchag, machine.gpus_per_node)
    choice = plan_channel_stage(model, Workload(args.channels, 8), machine, tp=tp_for_dchag)
    print(f"best D-CHAG config at TP{tp_for_dchag}: {choice.summary}")
    if min_tp is not None:
        gain = throughput_gain(
            model, args.channels, choice.plan, ParallelPlan("tp", tp=min_tp), machine
        )
        print(f"  projected gain over TP{min_tp}-only: {gain:+.0%}")

    # 4. Hybrid layout at scale.
    dp = args.gpus // tp_for_dchag
    hybrid = ParallelPlan(
        "dchag", tp=tp_for_dchag, dp=dp,
        dchag_kind=choice.plan.dchag_kind, dchag_fanout=choice.plan.dchag_fanout,
    )
    est = sustained_estimate(model, args.channels, hybrid, machine)
    total = global_batch_throughput(model, args.channels, hybrid, machine, args.global_batch)
    print(f"\nhybrid layout: {hybrid.label}  (replica = {hybrid.gpus_per_replica} GCDs, "
          f"dp = {dp} replicas)")
    print(f"  micro-batch per replica: {est.micro_batch}")
    print(f"  memory: {est.memory.total / gb:.1f} GB/GPU "
          f"({est.memory.utilization(machine):.0%} of HBM)")
    print(f"  projected sustained throughput at global batch {args.global_batch}: "
          f"{total:,.0f} TFLOP/s ({total / args.gpus:.1f} per GCD)")


if __name__ == "__main__":
    main()
