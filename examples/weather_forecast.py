#!/usr/bin/env python
"""ClimaX-style weather forecasting with D-CHAG (paper §5.2).

Reproduces the Fig. 12 experiment at laptop scale: an 80-channel ERA5-like
dataset on the paper's 5.625° grid (32×64), an image-to-image forecaster
conditioned on a metadata token (time, lead time), trained as

* baseline on one rank, and
* D-CHAG (both -L and -C variants) on four simulated ranks (as the paper),

then evaluated on a held-out chronological test split with latitude-weighted
RMSE for Z500, T850 and U10 — the paper's three headline variables.

Run:  python examples/weather_forecast.py [--steps 25] [--ranks 4]
"""

import argparse

import numpy as np

from repro.core import DCHAG, DCHAGConfig
from repro.data import ERA5Config, Grid, SyntheticERA5, regrid
from repro.dist import run_spmd
from repro.models import ChannelViT, WeatherForecaster, build_serial_forecaster
from repro.nn import ViTEncoder
from repro.train import TrainConfig, Trainer, eval_channel_rmse


def parse_args() -> argparse.Namespace:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--steps", type=int, default=25)
    ap.add_argument("--batch", type=int, default=8, help="paper: 512")
    ap.add_argument("--ranks", type=int, default=4, help="paper: 4")
    ap.add_argument("--dim", type=int, default=48)
    ap.add_argument("--depth", type=int, default=2)
    ap.add_argument("--heads", type=int, default=4)
    ap.add_argument("--patch", type=int, default=8)
    return ap.parse_args()


def main() -> None:
    args = parse_args()
    C, H, W = 80, 32, 64

    # The paper regrids 0.25° ERA5 to 5.625° with xESMF/bilinear; demonstrate
    # the same pipeline with our regridder on a finer synthetic field.
    hi = SyntheticERA5(ERA5Config(height=64, width=128, n_steps=2, seed=1))
    coarse = regrid(hi.fields[0], Grid(64, 128), Grid(32, 64), "bilinear")
    print(f"regrid demo: {hi.fields[0].shape} -> {coarse.shape} (bilinear, like xESMF)")

    era = SyntheticERA5(ERA5Config(height=H, width=W, n_steps=args.batch + 8, seed=7))
    train_idx, test_idx = era.train_test_split(0.25)
    x, y, meta = era.batch(train_idx[: args.batch])
    xt, yt, mt = era.batch(test_idx[: max(2, args.batch // 2)])
    print(f"synthetic ERA5: {era.fields.shape[0]} steps x {C} channels on {H}x{W} "
          f"(vars: {', '.join(era.channel_names[:4])}, ..., "
          f"{', '.join(era.channel_names[-3:])})")

    # ---- baseline ------------------------------------------------------------
    serial = build_serial_forecaster(
        channels=C, image_hw=(H, W), patch=args.patch, dim=args.dim,
        depth=args.depth, heads=args.heads, rng=np.random.default_rng(0),
    )
    tr = Trainer(serial, TrainConfig(lr=2e-3, total_steps=args.steps, warmup_steps=3))
    base_losses = [tr.step(x, y, meta) for _ in range(args.steps)]
    base_rmse = eval_channel_rmse(serial(xt, mt).data, yt)

    # ---- D-CHAG variants --------------------------------------------------------
    def train_variant(comm, kind):
        cfg = DCHAGConfig(channels=C, patch=args.patch, dim=args.dim, heads=args.heads, kind=kind)
        frontend = DCHAG(comm, None, cfg, rng_seed=6)
        shared = np.random.default_rng(0)
        encoder = ViTEncoder(args.dim, args.depth, args.heads, shared)
        n_tokens = (H // args.patch) * (W // args.patch)
        backbone = ChannelViT(frontend, encoder, n_tokens, args.dim, shared, meta_fields=2)
        model = WeatherForecaster(backbone, args.dim, args.patch, C, (H, W), shared)
        t = Trainer(model, TrainConfig(lr=2e-3, total_steps=args.steps, warmup_steps=3))
        losses = [t.step(x, y, meta) for _ in range(args.steps)]
        return losses, eval_channel_rmse(model(xt, mt).data, yt)

    losses_l, rmse_l = run_spmd(train_variant, args.ranks, "linear")[0]
    losses_c, rmse_c = run_spmd(train_variant, args.ranks, "cross")[0]

    # ---- report -----------------------------------------------------------------
    print(f"\n{'iter':>6}  {'baseline':>10}  {'D-CHAG-L':>10}  {'D-CHAG-C':>10}")
    stride = max(1, args.steps // 10)
    for i in range(0, args.steps, stride):
        print(f"{i:>6}  {base_losses[i]:>10.4f}  {losses_l[i]:>10.4f}  {losses_c[i]:>10.4f}")

    print(f"\ntest RMSE (lat-weighted, paper's variables):")
    print(f"{'variable':>10}  {'baseline':>10}  {'D-CHAG-L':>10}  {'D-CHAG-C':>10}")
    for v in ("z500", "t850", "u10"):
        print(f"{v:>10}  {base_rmse[v]:>10.4f}  {rmse_l[v]:>10.4f}  {rmse_c[v]:>10.4f}")
    worst = max(
        abs(r[v] - base_rmse[v]) / base_rmse[v] for r in (rmse_l, rmse_c) for v in base_rmse
    )
    print(f"\nworst relative RMSE gap: {worst:.1%} (paper Fig. 12: ~1% at full scale)")


if __name__ == "__main__":
    main()
