#!/usr/bin/env python
"""Hybrid D-CHAG training: D-CHAG/TP × DP on a device mesh (paper §3.4, Fig. 5).

End-to-end miniature of the paper's production configuration: 8 simulated
ranks factored as a ``DeviceMesh(tp=2, dp=4)`` (the paper uses D-CHAG/TP
within a node and DP across nodes).  Each D-CHAG group owns half the
channels; each DP replica trains on its own batch shard; gradients of the
replicated modules synchronize with one AllReduce per step across the DP
group only.

Run:  python examples/hybrid_training.py [--steps 10]
"""

import argparse

import numpy as np

from repro.core import DCHAG, DCHAGConfig
from repro.data import HyperspectralConfig, HyperspectralDataset
from repro.dist import average_gradients, broadcast_parameters, run_spmd_world
from repro.models import MAEModel
from repro.nn import ViTEncoder
from repro.parallel import DeviceMesh, shard_batch
from repro.train import TrainConfig, Trainer

C, IMG, P, D, HEADS, DEPTH = 16, 16, 4, 32, 4, 2


def parse_args() -> argparse.Namespace:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--steps", type=int, default=10)
    ap.add_argument("--tp", type=int, default=2, help="D-CHAG/TP group size")
    ap.add_argument("--dp", type=int, default=4, help="data-parallel replicas")
    ap.add_argument("--global-batch", type=int, default=16)
    return ap.parse_args()


def main() -> None:
    args = parse_args()
    world_size = args.tp * args.dp
    ds = HyperspectralDataset(
        HyperspectralConfig(channels=C, height=IMG, width=IMG, n_images=args.global_batch, seed=6)
    )
    global_batch = ds.batch(range(args.global_batch))

    def train(comm):
        mesh = DeviceMesh(comm, tp=args.tp, dp=args.dp)
        # D-CHAG over the TP group; identical seed per group → replicated
        # shared modules within the group.
        cfg = DCHAGConfig(channels=C, patch=P, dim=D, heads=HEADS, kind="linear")
        frontend = DCHAG(comm, mesh.dchag_group, cfg, rng_seed=4)
        shared = np.random.default_rng(0)
        model = MAEModel(
            frontend, ViTEncoder(D, DEPTH, HEADS, shared),
            num_tokens=(IMG // P) ** 2, dim=D, patch=P, out_channels=C,
            rng=shared, mask_ratio=0.5, decoder_depth=2,
        )
        # Sync every parameter across the DP group (ranks holding the same
        # channel shard), then train on this replica's batch slice.
        broadcast_parameters(comm, model.parameters(), group=mesh.dp_group)
        local = shard_batch(global_batch, comm, mesh.dp_group)

        def dp_sync():
            average_gradients(comm, model.parameters(), group=mesh.dp_group)

        tr = Trainer(
            model, TrainConfig(lr=3e-3, total_steps=args.steps, warmup_steps=2),
            grad_hook=dp_sync,
        )
        losses = [tr.step(local, np.random.default_rng(300 + i)) for i in range(args.steps)]
        return losses, mesh.describe()

    results, world = run_spmd_world(train, world_size)
    losses = results[0][0]
    print(f"world={world_size}: {results[0][1]}")
    print(f"loss: {losses[0]:.4f} -> {losses[-1]:.4f} over {args.steps} steps")

    # TP peers (same replica, same batch shard) must see identical losses;
    # different DP replicas train different shards, so their losses differ.
    for replica in range(args.dp):
        base = results[replica * args.tp][0]
        for t in range(1, args.tp):
            got = results[replica * args.tp + t][0]
            assert np.allclose(got, base, rtol=1e-4), f"replica {replica} TP peer {t} diverged"
    per_replica_final = [results[i * args.tp][0][-1] for i in range(args.dp)]
    print(f"per-replica final losses (different shards): "
          + ", ".join(f"{v:.4f}" for v in per_replica_final))
    hist = world.traffic.ops_histogram()
    print(f"traffic histogram: {hist}")
    print("D-CHAG gathers: forward-only; DP sync: one AllReduce per step per rank")


if __name__ == "__main__":
    main()
