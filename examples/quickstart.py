#!/usr/bin/env python
"""Quickstart: train a multi-channel foundation model with D-CHAG.

Walks the whole public API in about a minute:

1. generate a small synthetic hyperspectral dataset;
2. build the paper's FM (tokenize → channel-aggregate → ViT) serially;
3. run the *same* model with the D-CHAG channel stage on 2 simulated ranks;
4. verify the headline properties: replicated outputs, a single forward
   AllGather of one channel per rank, zero backward collectives;
5. ask the planner which D-CHAG variant to use for a 7B model on Frontier.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import DCHAG, DCHAGConfig, plan_channel_stage
from repro.data import HyperspectralConfig, HyperspectralDataset
from repro.dist import run_spmd_world
from repro.models import build_serial_mae
from repro.nn import ViTEncoder
from repro.perf import Workload, frontier, named_model
from repro.train import TrainConfig, Trainer

CHANNELS, IMAGE, PATCH, DIM, HEADS, DEPTH = 16, 16, 4, 32, 4, 2


def main() -> None:
    # 1. Data ------------------------------------------------------------
    ds = HyperspectralDataset(
        HyperspectralConfig(channels=CHANNELS, height=IMAGE, width=IMAGE, n_images=16)
    )
    batch = ds.batch(range(8))
    print(f"dataset: {len(ds)} synthetic hyperspectral images, batch {batch.shape}")

    # 2. Serial baseline ---------------------------------------------------
    model = build_serial_mae(
        channels=CHANNELS, image=IMAGE, patch=PATCH, dim=DIM, depth=DEPTH,
        heads=HEADS, rng=np.random.default_rng(0), agg="cross",
    )
    trainer = Trainer(model, TrainConfig(lr=3e-3, total_steps=10, warmup_steps=2))
    for step in range(10):
        loss = trainer.step(batch, np.random.default_rng(step))
    print(f"serial MAE: loss {trainer.result.losses[0]:.4f} -> {loss:.4f} in 10 steps")

    # 3. The same channel stage, distributed with D-CHAG -------------------
    def spmd(comm):
        cfg = DCHAGConfig(channels=CHANNELS, patch=PATCH, dim=DIM, heads=HEADS, kind="linear")
        frontend = DCHAG(comm, None, cfg, rng_seed=1)          # rank's channel shard
        out = frontend(batch)                                   # [B, N, D], replicated
        comm.phase = "backward"
        (out * out).mean().backward()
        comm.phase = ""
        return out.data.copy()

    outs, world = run_spmd_world(spmd, 2)
    np.testing.assert_allclose(outs[0], outs[1], rtol=1e-5)
    assert world.traffic.count(phase="backward") == 0
    print(
        "D-CHAG on 2 ranks: outputs replicated, "
        f"{world.traffic.ops_histogram()} (forward only — zero backward collectives)"
    )

    # 4. Capacity planning on the Frontier machine model --------------------
    machine = frontier()
    choice = plan_channel_stage(named_model("7B"), Workload(500, 8), machine, tp=8)
    print(f"planner for 7B / 500 channels on one Frontier node: {choice.summary}")


if __name__ == "__main__":
    main()
