#!/usr/bin/env python
"""Multi-modal fusion with D-CHAG-style channel distribution (paper §3.5).

The paper notes its aggregation scheme "has been used in FMs to fuse across
different modalities".  This example builds a foundation model over THREE
modalities at two resolutions —

* 16-band hyperspectral imagery (base grid),
* 8 weather-style variables (base grid),
* RGB camera frames at 2× resolution (pooled down),

fuses their 27 combined channels with a single cross-attention (and, as an
alternative, Perceiver fusion with a Swin encoder — the Aurora-style stack
from §3.5), and then distributes the fused channel axis across simulated
ranks exactly the way D-CHAG shards a single-modality axis.

Run:  python examples/multimodal_fusion.py
"""

import numpy as np

from repro.data import ERA5Config, HyperspectralConfig, HyperspectralDataset, SyntheticERA5
from repro.dist import all_gather_forward_only, run_spmd_world
from repro.models import ChannelViT, ModalitySpec, MultiModalFrontend
from repro.nn import PerceiverChannelFusion, SwinEncoder, ViTEncoder
from repro.core.partial_agg import PartialChannelAggregator
from repro.tensor import Tensor

B, IMG, PATCH, DIM, HEADS = 2, 16, 4, 32, 4


def make_inputs() -> dict[str, np.ndarray]:
    hyper = HyperspectralDataset(
        HyperspectralConfig(channels=16, height=IMG, width=IMG, n_images=4, seed=1)
    ).batch(range(B))
    weather = SyntheticERA5(ERA5Config(height=IMG, width=IMG, n_steps=B + 1, seed=2)).fields[
        :B, :8
    ]
    rgb = np.random.default_rng(3).standard_normal((B, 3, 2 * IMG, 2 * IMG)).astype(np.float32)
    return {"hyper": hyper, "weather": weather, "rgb": rgb}


def main() -> None:
    inputs = make_inputs()
    specs = [
        ModalitySpec("hyper", 16),
        ModalitySpec("weather", 8),
        ModalitySpec("rgb", 3, scale=2),
    ]
    rng = np.random.default_rng(0)

    # ---- serial fusion + ViT ------------------------------------------------
    frontend = MultiModalFrontend(specs, PATCH, DIM, HEADS, rng)
    encoder = ViTEncoder(DIM, 2, HEADS, rng)
    model = ChannelViT(frontend, encoder, (IMG // PATCH) ** 2, DIM, rng)
    out = model(inputs)
    print(f"fused {frontend.total_channels} channels from {len(specs)} modalities "
          f"-> tokens {out.shape}")
    print("channel slices:", {k: (v.start, v.stop) for k, v in frontend.channel_slices.items()})

    # ---- Aurora-style stack: Perceiver fusion + Swin encoder (§3.5) -----------
    frontend.aggregator = PerceiverChannelFusion(DIM, HEADS, rng, num_latents=4, iterations=2)
    swin = SwinEncoder(DIM, 2, HEADS, grid=(IMG // PATCH, IMG // PATCH), window=4, rng=rng)
    aurora_like = ChannelViT(frontend, swin, (IMG // PATCH) ** 2, DIM, rng)
    out2 = aurora_like(inputs)
    print(f"Perceiver+Swin variant -> tokens {out2.shape} "
          "(the paper expects even larger D-CHAG wins for this stack)")

    # ---- distribute the fused channel axis, D-CHAG style ----------------------
    # The fused 27-channel axis pads to 28 so 4 ranks each own 7 channels.
    frontend2 = MultiModalFrontend(specs, PATCH, DIM, HEADS, np.random.default_rng(5))
    fused_tokens = frontend2.tokenize(inputs).data  # [B, 27, N, D]
    pad = np.zeros((B, 1, *fused_tokens.shape[2:]), dtype=np.float32)
    fused_tokens = np.concatenate([fused_tokens, pad], axis=1)

    def spmd(comm):
        world = comm.size
        c_total = fused_tokens.shape[1]
        step = c_total // world
        mine = Tensor(fused_tokens[:, comm.rank * step : (comm.rank + 1) * step], requires_grad=True)
        partial = PartialChannelAggregator(step, DIM, HEADS, np.random.default_rng(10 + comm.rank))
        local = partial(mine)                                       # [B, 1, N, D]
        gathered = all_gather_forward_only(comm, local, axis=1)      # [B, world, N, D]
        final = PartialChannelAggregator(world, DIM, HEADS, np.random.default_rng(99), kind="cross")
        out = final(gathered).squeeze(1)
        comm.phase = "backward"
        (out * out).mean().backward()
        comm.phase = ""
        return out.data.copy()

    results, world = run_spmd_world(spmd, 4)
    assert all(np.allclose(r, results[0], rtol=1e-5) for r in results[1:])
    assert world.traffic.count(phase="backward") == 0
    print(f"D-CHAG over the fused multi-modal axis on 4 ranks: outputs replicated, "
          f"traffic {world.traffic.ops_histogram()}, zero backward collectives")


if __name__ == "__main__":
    main()
