#!/usr/bin/env python
"""Channel-subset deployment: the flexibility §2.1 credits to channel
aggregation.

"[The channel aggregation module] allows the model to generalize or
fine-tune on subsets of the original channel dimensions while still
leveraging the full model capacity."

Workflow demonstrated here:

1. pre-train an MAE on the full 24-band synthetic hyperspectral set;
2. carve the front-end down to 8 bands (as if a cheaper field sensor only
   measures those) with ``subset_channel_frontend`` — tokenizer weights and
   channel IDs slice; the cross-attention aggregator and ViT are reused
   as-is because they are channel-count agnostic;
3. evaluate zero-shot on the subset, then fine-tune briefly and compare.

Run:  python examples/channel_subset_finetune.py
"""

import numpy as np

from repro.data import HyperspectralConfig, HyperspectralDataset, subset_channel_frontend
from repro.models import MAEModel, build_serial_mae
from repro.train import TrainConfig, Trainer, evaluate_mae

C_FULL, C_SUB, IMG, P, D, HEADS, DEPTH = 24, 8, 16, 4, 48, 4, 2
PRETRAIN_STEPS, FINETUNE_STEPS = 25, 10


def main() -> None:
    ds = HyperspectralDataset(
        HyperspectralConfig(channels=C_FULL, height=IMG, width=IMG, n_images=24, seed=11)
    )
    train_imgs = ds.batch(range(16))
    test_imgs = ds.batch(range(16, 24))

    # ---- 1. pre-train on all 24 bands --------------------------------------
    model = build_serial_mae(
        channels=C_FULL, image=IMG, patch=P, dim=D, depth=DEPTH, heads=HEADS,
        rng=np.random.default_rng(0), mask_ratio=0.6, agg="cross",
    )
    tr = Trainer(model, TrainConfig(lr=3e-3, total_steps=PRETRAIN_STEPS, warmup_steps=3))
    for i in range(PRETRAIN_STEPS):
        loss = tr.step(train_imgs, np.random.default_rng(i))
    full_eval = evaluate_mae(model, test_imgs, np.random.default_rng(0))
    print(f"pre-trained on {C_FULL} bands: final loss {loss:.4f}, "
          f"test masked-RMSE {full_eval['masked_rmse']:.4f}")

    # ---- 2. carve an 8-band deployment model -------------------------------
    subset = np.linspace(0, C_FULL - 1, C_SUB).round().astype(int)
    sub_frontend = subset_channel_frontend(model.frontend, subset)
    sub_model = MAEModel(
        sub_frontend, model.encoder, num_tokens=(IMG // P) ** 2, dim=D,
        patch=P, out_channels=C_SUB, rng=np.random.default_rng(1),
        mask_ratio=0.6, decoder_depth=2,
    )
    # Reuse the trained positional table; only the (small) decoder is new.
    sub_model.pos = model.pos
    sub_train = train_imgs[:, subset]
    sub_test = test_imgs[:, subset]
    zero_shot = evaluate_mae(sub_model, sub_test, np.random.default_rng(0))
    print(f"zero-shot on {C_SUB} bands (encoder frozen knowledge, fresh decoder): "
          f"masked-RMSE {zero_shot['masked_rmse']:.4f}")

    # ---- 3. brief fine-tune on the subset -------------------------------------
    tr2 = Trainer(sub_model, TrainConfig(lr=1e-3, total_steps=FINETUNE_STEPS, warmup_steps=2))
    for i in range(FINETUNE_STEPS):
        loss = tr2.step(sub_train, np.random.default_rng(500 + i))
    tuned = evaluate_mae(sub_model, sub_test, np.random.default_rng(0))
    print(f"after {FINETUNE_STEPS} fine-tune steps: masked-RMSE {tuned['masked_rmse']:.4f}")
    assert tuned["masked_rmse"] < zero_shot["masked_rmse"], "fine-tuning should improve"
    print("channel-subset deployment works: same aggregator + ViT, "
          f"{C_SUB}/{C_FULL} channels")


if __name__ == "__main__":
    main()
